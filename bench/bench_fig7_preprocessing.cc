// Regenerates Figure 7: one-time pre-processing runtime (POI processing,
// hierarchical decomposition, region specification, and W_n construction)
// as |P| grows from 2000 to 8000, and as the assumed travel speed varies
// {4, 8, 12, 16, ∞} km/h, for the Taxi-Foursquare and Safegraph cities.

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "region/decomposition.h"
#include "region/region_graph.h"
#include "synth/safegraph.h"
#include "synth/taxi_foursquare.h"

using namespace trajldp;

namespace {

struct PreprocessingCost {
  double decomposition_seconds = 0.0;
  double graph_seconds = 0.0;
  size_t regions = 0;
  size_t edges = 0;
};

StatusOr<PreprocessingCost> Measure(const model::PoiDatabase& db,
                                    const model::TimeDomain& time,
                                    double speed_kmh) {
  PreprocessingCost cost;
  Stopwatch watch;
  region::DecompositionConfig config;  // paper defaults (§6.2)
  auto decomp = region::StcDecomposition::Build(&db, time, config);
  if (!decomp.ok()) return decomp.status();
  cost.decomposition_seconds = watch.ElapsedSeconds();
  cost.regions = decomp->num_regions();

  model::ReachabilityConfig reach;
  reach.speed_kmh = speed_kmh;
  reach.reference_gap_minutes = 50;
  watch.Restart();
  const auto graph = region::RegionGraph::Build(*decomp, reach);
  cost.graph_seconds = watch.ElapsedSeconds();
  cost.edges = graph.num_edges();
  return cost;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 7: Pre-processing runtime costs",
                     "paper Figure 7, §6.1.5");
  const auto time = *model::TimeDomain::Create(10);

  std::cout << "--- Runtime vs |P| (speed = 8 km/h) ---\n";
  TablePrinter by_pois({"|P|", "TF decomp (s)", "TF W_n (s)", "TF regions",
                        "SG decomp (s)", "SG W_n (s)", "SG regions"});
  for (size_t num_pois : {2000u, 4000u, 6000u, 8000u}) {
    synth::TaxiFoursquareConfig tf;
    tf.city.num_pois = num_pois;
    auto tf_db = synth::BuildTaxiFoursquarePois(tf);
    synth::SafegraphConfig sg;
    sg.city.num_pois = num_pois;
    sg.city.seed = 8;
    auto sg_db = synth::BuildSafegraphPois(sg);
    if (!tf_db.ok() || !sg_db.ok()) {
      std::cerr << "db build failed\n";
      return 1;
    }
    auto tf_cost = Measure(*tf_db, time, 8.0);
    auto sg_cost = Measure(*sg_db, time, 8.0);
    if (!tf_cost.ok() || !sg_cost.ok()) {
      std::cerr << "preprocessing failed\n";
      return 1;
    }
    by_pois.AddRow({std::to_string(num_pois),
                    TablePrinter::Fmt(tf_cost->decomposition_seconds, 3),
                    TablePrinter::Fmt(tf_cost->graph_seconds, 3),
                    std::to_string(tf_cost->regions),
                    TablePrinter::Fmt(sg_cost->decomposition_seconds, 3),
                    TablePrinter::Fmt(sg_cost->graph_seconds, 3),
                    std::to_string(sg_cost->regions)});
    std::cout << "finished |P| = " << num_pois << "\n";
  }
  std::cout << "\n";
  by_pois.Print(std::cout);

  std::cout << "\n--- Runtime vs travel speed (|P| = 2000) ---\n";
  synth::TaxiFoursquareConfig tf;
  tf.city.num_pois = 2000;
  auto tf_db = synth::BuildTaxiFoursquarePois(tf);
  synth::SafegraphConfig sg;
  sg.city.num_pois = 2000;
  sg.city.seed = 8;
  auto sg_db = synth::BuildSafegraphPois(sg);
  if (!tf_db.ok() || !sg_db.ok()) {
    std::cerr << "db build failed\n";
    return 1;
  }
  TablePrinter by_speed({"speed (km/h)", "TF total (s)", "TF |W2|",
                         "SG total (s)", "SG |W2|"});
  const double speeds[] = {4.0, 8.0, 12.0, 16.0,
                           std::numeric_limits<double>::infinity()};
  for (double speed : speeds) {
    auto tf_cost = Measure(*tf_db, time, speed);
    auto sg_cost = Measure(*sg_db, time, speed);
    if (!tf_cost.ok() || !sg_cost.ok()) {
      std::cerr << "preprocessing failed\n";
      return 1;
    }
    const std::string label =
        std::isfinite(speed) ? TablePrinter::Fmt(speed, 0) : "Inf";
    by_speed.AddRow(
        {label,
         TablePrinter::Fmt(
             tf_cost->decomposition_seconds + tf_cost->graph_seconds, 3),
         std::to_string(tf_cost->edges),
         TablePrinter::Fmt(
             sg_cost->decomposition_seconds + sg_cost->graph_seconds, 3),
         std::to_string(sg_cost->edges)});
  }
  by_speed.Print(std::cout);

  bench::PrintShapeCheck(
      "Paper Figure 7: pre-processing runtime grows steeply with |P|\n"
      "(tens of minutes at 8000 POIs in their Python implementation) but\n"
      "is largely insensitive to the travel speed. Expect the same shape:\n"
      "superlinear growth in |P|, near-flat across speeds (only |W2|\n"
      "grows with speed).");
  return 0;
}
