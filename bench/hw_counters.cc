#include "hw_counters.h"

#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace trajldp::bench {

#if defined(__linux__)

namespace {

struct EventSpec {
  uint32_t type;
  uint64_t config;
};

// Order matches HwSample / the Counter array: cycles, instructions,
// LLC loads, LLC misses, branch misses.
constexpr EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16)},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

int OpenCounter(const EventSpec& spec) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  // Counters start enabled and are delta'd from a Start() baseline
  // read: ioctl(PERF_EVENT_IOC_RESET/ENABLE) does not propagate to the
  // threads inherit picks up, a baseline subtraction does.
  attr.disabled = 0;
  // Count worker threads spawned inside the measured region (the whole
  // point for the engine benches). inherit forbids PERF_FORMAT_GROUP
  // reads, which is why each event gets its own fd.
  attr.inherit = 1;
  attr.exclude_kernel = 1;  // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}

}  // namespace

HwCounters::HwCounters() {
  for (int i = 0; i < kNumCounters; ++i) {
    counters_[i].fd = OpenCounter(kEvents[i]);
  }
  // Core pair (cycles, instructions) decides availability; the LLC pair
  // is best-effort on top (virtualised PMUs often expose only the core
  // events).
  available_ = counters_[0].fd >= 0 && counters_[1].fd >= 0;
  llc_supported_ = counters_[2].fd >= 0 && counters_[3].fd >= 0;
  if (!available_) {
    reason_ = std::string("perf_event_open: ") + std::strerror(errno);
    for (Counter& c : counters_) {
      if (c.fd >= 0) close(c.fd);
      c.fd = -1;
    }
  }
}

HwCounters::~HwCounters() {
  for (Counter& c : counters_) {
    if (c.fd >= 0) close(c.fd);
  }
}

uint64_t HwCounters::ReadScaled(int idx) const {
  const int fd = counters_[idx].fd;
  if (fd < 0) return 0;
  // value, time_enabled, time_running (the read_format above).
  uint64_t buf[3] = {0, 0, 0};
  if (read(fd, buf, sizeof(buf)) != static_cast<ssize_t>(sizeof(buf))) {
    return 0;
  }
  if (buf[2] != 0 && buf[2] < buf[1]) {
    // The PMU multiplexed this event: scale up by enabled/running, the
    // standard perf estimate.
    const double scaled = static_cast<double>(buf[0]) *
                          (static_cast<double>(buf[1]) /
                           static_cast<double>(buf[2]));
    return static_cast<uint64_t>(scaled);
  }
  return buf[0];
}

void HwCounters::Start() {
  if (!available_) return;
  for (int i = 0; i < kNumCounters; ++i) {
    counters_[i].base = ReadScaled(i);
  }
}

HwSample HwCounters::Delta() const {
  HwSample out;
  if (!available_) return out;
  uint64_t vals[kNumCounters];
  for (int i = 0; i < kNumCounters; ++i) {
    const uint64_t now = ReadScaled(i);
    const uint64_t base = counters_[i].base;
    vals[i] = now >= base ? now - base : 0;
  }
  out.cycles = vals[0];
  out.instructions = vals[1];
  out.llc_loads = vals[2];
  out.llc_misses = vals[3];
  out.branch_misses = vals[4];
  return out;
}

#else  // !__linux__

HwCounters::HwCounters() {
  reason_ = "perf_event_open is Linux-only";
}
HwCounters::~HwCounters() = default;
void HwCounters::Start() {}
HwSample HwCounters::Delta() const { return HwSample{}; }
uint64_t HwCounters::ReadScaled(int) const { return 0; }

#endif

}  // namespace trajldp::bench
