// Ablation A: the optimal reconstruction solved two ways — the paper's
// ILP (via the bundled simplex solver, §5.5) versus the exact layered-DP
// (Viterbi) this library defaults to. Verifies that both return the same
// objective value on every instance and compares their runtimes as the
// candidate set grows, substantiating Table 3's observation that the LP
// dominates mechanism runtime.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/lp_reconstructor.h"
#include "core/mechanism.h"
#include "core/ngram_perturber.h"
#include "core/viterbi_reconstructor.h"
#include "region/region_index.h"

using namespace trajldp;

namespace {

double ObjectiveOf(const core::ReconstructionProblem& problem,
                   const region::RegionTrajectory& result) {
  std::vector<size_t> assignment(result.size());
  const auto& cands = problem.candidates();
  for (size_t i = 0; i < result.size(); ++i) {
    assignment[i] = static_cast<size_t>(
        std::lower_bound(cands.begin(), cands.end(), result[i]) -
        cands.begin());
  }
  return problem.Objective(assignment);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation A: LP vs DP reconstruction (equivalence + runtime)",
      "§5.5, §5.8; Table 3's 'Optimal Reconst.' column");

  auto dataset = eval::MakeTaxiFoursquareDataset(
      bench::ScaledOptions(600, 60));
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }

  core::NGramConfig config;
  config.epsilon = 5.0;
  config.reachability = dataset->reachability;
  config.quality_sensitivity = 1.0;  // paper calibration (DESIGN.md)
  auto mech = core::NGramMechanism::Build(&dataset->db, dataset->time,
                                          config);
  if (!mech.ok()) {
    std::cerr << mech.status() << "\n";
    return 1;
  }
  core::NgramPerturber perturber(&mech->domain(),
                                 core::NgramPerturber::Config{2, 5.0});
  core::ViterbiReconstructor viterbi;
  lp::SimplexSolver::Options lp_options;
  lp_options.max_iterations = 50000;
  core::LpReconstructor lp(lp_options);

  // Dense-tableau LPs grow as |candidates|² bigram variables per layer;
  // cap the instance size so the LP side stays tractable (which is itself
  // the point §5.8 makes about the reconstruction's cost).
  constexpr size_t kMaxCandidates = 60;
  constexpr size_t kMaxLen = 5;

  TablePrinter table({"|tau|", "candidates", "bigram vars", "DP (ms)",
                      "LP (ms)", "LP/DP", "objectives equal"});
  Rng rng(77);
  size_t instances = 0, equal = 0;
  for (const auto& traj : dataset->trajectories) {
    if (instances >= 10) break;
    if (traj.size() > kMaxLen) continue;
    auto tau = mech->decomposition().ToRegionTrajectory(traj);
    if (!tau.ok()) continue;
    auto z = perturber.Perturb(*tau, rng);
    if (!z.ok()) continue;

    std::vector<region::RegionId> observed;
    for (const auto& gram : *z) {
      observed.insert(observed.end(), gram.regions.begin(),
                      gram.regions.end());
    }
    std::sort(observed.begin(), observed.end());
    observed.erase(std::unique(observed.begin(), observed.end()),
                   observed.end());
    std::vector<region::RegionId> candidates =
        region::MbrCandidateRegions(mech->decomposition(), observed);
    if (candidates.size() > kMaxCandidates) {
      // Deterministically thin the candidate set, keeping every observed
      // region (both solvers see the identical reduced problem).
      std::vector<region::RegionId> thinned = observed;
      const size_t stride = candidates.size() / kMaxCandidates + 1;
      for (size_t i = 0; i < candidates.size(); i += stride) {
        thinned.push_back(candidates[i]);
      }
      std::sort(thinned.begin(), thinned.end());
      thinned.erase(std::unique(thinned.begin(), thinned.end()),
                    thinned.end());
      candidates = std::move(thinned);
    }
    auto problem = core::ReconstructionProblem::Create(
        &mech->distance(), &mech->graph(), tau->size(), *z, candidates);
    if (!problem.ok()) continue;

    Stopwatch watch;
    auto dp_result = viterbi.Reconstruct(*problem);
    const double dp_ms = watch.ElapsedMillis();
    watch.Restart();
    auto lp_result = lp.Reconstruct(*problem);
    const double lp_ms = watch.ElapsedMillis();
    if (!dp_result.ok() || !lp_result.ok()) continue;

    const double dp_obj = ObjectiveOf(*problem, *dp_result);
    const double lp_obj = ObjectiveOf(*problem, *lp_result);
    const bool same = std::abs(dp_obj - lp_obj) < 1e-6 * (1.0 + dp_obj);
    ++instances;
    if (same) ++equal;

    size_t bigram_vars = 0;
    for (size_t c1 = 0; c1 < candidates.size(); ++c1) {
      for (size_t c2 = 0; c2 < candidates.size(); ++c2) {
        if (problem->Feasible(c1, c2)) ++bigram_vars;
      }
    }
    table.AddRow({std::to_string(tau->size()),
                  std::to_string(candidates.size()),
                  std::to_string(bigram_vars * (tau->size() - 1)),
                  TablePrinter::Fmt(dp_ms, 3), TablePrinter::Fmt(lp_ms, 1),
                  TablePrinter::Fmt(lp_ms / std::max(dp_ms, 1e-6), 0),
                  same ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\n" << equal << "/" << instances
            << " instances solved to identical objectives.\n";

  bench::PrintShapeCheck(
      "The DP and LP must agree on every instance (the flow polytope is\n"
      "integral). The LP should be orders of magnitude slower, which is\n"
      "exactly why the paper's Table 3 shows >85% of mechanism runtime in\n"
      "the LP stage — and why this library defaults to the DP.");
  return instances == equal ? 0 : 1;
}
