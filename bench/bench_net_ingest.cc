// Networked-ingest benchmark: stream the same wire frames into a
// StreamingCollector several ways — pushed directly in memory, over a
// real loopback TCP connection (net::ReportClient → net::IngestServer),
// and over loopback in exactly-once trim (sequenced client + journaling
// server, batched and per-record fsync) — on the same ~200-region /
// n = 2 world as bench_stream_ingest, and compare. Two gates: loopback
// throughput within 2× of in-memory (the socket hop must not dominate a
// pipeline whose cost is reconstruction), journaled ingest with batched
// fsync within 2× of raw loopback (durability must not either), and
// every leg bit-identical to BatchReleaseEngine::ReleaseAllFull. A
// fourth leg holds 10k simultaneous connections against the epoll
// reactor (gate: target held AND merged output bit-identical).
//
//   ./build/bench_net_ingest [--json PATH] [--users N] [--churn-conns C]
//
// The timed section covers frame delivery (push or socket) through
// Finish(): decode + validate + reconstruct on the worker pool + merge.

#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/shard_plan.h"
#include "core/streaming_collector.h"
#include "io/wire.h"
#include "net/framing.h"
#include "net/ingest_server.h"
#include "net/report_client.h"
#include "net/socket.h"
#include "obs/admin_server.h"
#include "test_support.h"

namespace trajldp {
namespace {

using core::FullRelease;
using region::RegionId;

bool Identical(const std::vector<FullRelease>& a,
               const std::vector<FullRelease>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].regions != b[i].regions ||
        !(a[i].trajectory == b[i].trajectory) ||
        a[i].poi_attempts != b[i].poi_attempts ||
        a[i].smoothed != b[i].smoothed) {
      return false;
    }
  }
  return true;
}

struct LegResult {
  double seconds = 0.0;
  double users_per_sec = 0.0;
  bool identical = false;
};

int Run(size_t num_users, size_t churn_conns, const std::string& json_path) {
  constexpr int kN = 2;
  constexpr double kEpsilon = 5.0;
  constexpr size_t kTrajectoryLen = 5;
  constexpr size_t kBatchSize = 256;
  constexpr uint64_t kSeed = 20260729;

  // Same ~200-region world as bench_stream_ingest / bench_batch_e2e.
  auto db = bench::MakeLatticeDb(2000);
  if (!db.ok()) {
    std::cerr << db.status() << "\n";
    return 1;
  }
  const auto time = *model::TimeDomain::Create(10);
  core::NGramConfig config;
  config.n = kN;
  config.epsilon = kEpsilon;
  config.decomposition.grid_size = 5;
  config.decomposition.coarse_grids = {1};
  config.decomposition.base_interval_minutes = 1440;
  config.decomposition.merge.kappa = 1;
  config.reachability.speed_kmh = 8.0;
  config.reachability.reference_gap_minutes = 30;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  if (!mech.ok()) {
    std::cerr << mech.status() << "\n";
    return 1;
  }
  const size_t num_regions = mech->decomposition().num_regions();
  const size_t hw_threads = ThreadPool::DefaultThreadCount();
  std::cout << "world: " << num_regions << " regions, " << num_users
            << " users, n=" << kN << ", L=" << kTrajectoryLen
            << ", batch=" << kBatchSize << ", hw threads: " << hw_threads
            << "\n";

  std::vector<region::RegionTrajectory> users(num_users);
  {
    Rng rng(4242);
    for (auto& tau : users) {
      for (size_t i = 0; i < kTrajectoryLen; ++i) {
        tau.push_back(static_cast<RegionId>(rng.UniformUint64(num_regions)));
      }
    }
  }

  // Reference and device-side reports.
  std::vector<FullRelease> reference;
  {
    core::BatchReleaseEngine engine(&*mech);
    auto result = engine.ReleaseAllFull(users, kSeed);
    if (!result.ok()) {
      std::cerr << "batch engine: " << result.status() << "\n";
      return 1;
    }
    reference = std::move(*result);
  }
  io::ReportBatch reports;
  {
    core::BatchReleaseEngine engine(&mech->perturber());
    auto perturbed = engine.ReleaseAll(users, kSeed);
    if (!perturbed.ok()) {
      std::cerr << "device perturb: " << perturbed.status() << "\n";
      return 1;
    }
    reports = core::MakeWireReports(users, std::move(*perturbed),
                                    mech->perturber());
  }

  // Pre-encode the frames once (framing is the devices' cost) with the
  // user-range routing field, exactly as ReportClient::SendBatch would.
  auto encode_frames =
      [&](const io::ReportBatch& shard) -> StatusOr<std::vector<std::string>> {
    io::WireEncodeOptions encode;
    encode.include_user_range = true;
    std::vector<std::string> frames;
    for (size_t begin = 0; begin < shard.size(); begin += kBatchSize) {
      const size_t end = std::min(begin + kBatchSize, shard.size());
      auto frame = io::EncodeReportBatch(
          std::span<const io::WireReport>(shard.data() + begin, end - begin),
          encode);
      if (!frame.ok()) return frame.status();
      frames.push_back(std::move(*frame));
    }
    return frames;
  };

  core::StreamingCollector::Config collector_config;
  collector_config.num_threads = std::max<size_t>(1, hw_threads);
  collector_config.queue_capacity = 8;

  auto finish_and_check =
      [&](std::vector<std::vector<core::UserRelease>> outputs,
          Stopwatch& watch, LegResult* result) -> Status {
    auto merged = core::MergeShardReleases(std::move(outputs), num_users);
    result->seconds = watch.ElapsedSeconds();
    if (!merged.ok()) return merged.status();
    result->users_per_sec =
        static_cast<double>(num_users) / result->seconds;
    result->identical = Identical(*merged, reference);
    return Status::Ok();
  };

  // --- Leg 1: in-memory PushEncoded (the BENCH_stream shape). --------
  // `stage_timing` toggles the per-frame/per-report latency histogram
  // clock reads (counters stay on either way) — the two settings are
  // the telemetered/untelemetered pair behind metrics_overhead_ratio.
  auto run_inmem = [&](bool stage_timing) -> StatusOr<LegResult> {
    auto frames = encode_frames(reports);
    if (!frames.ok()) return frames.status();
    mech->domain().ClearCache();
    std::vector<std::vector<core::UserRelease>> outputs(1);
    LegResult result;
    auto timed_config = collector_config;
    timed_config.enable_stage_timing = stage_timing;
    Stopwatch watch;
    {
      core::StreamingCollector collector(
          &*mech, kSeed,
          [&outputs](core::UserRelease release) {
            outputs[0].push_back(std::move(release));
          },
          timed_config);
      for (std::string& frame : *frames) {
        TRAJLDP_RETURN_NOT_OK(collector.PushEncoded(std::move(frame)));
      }
      TRAJLDP_RETURN_NOT_OK(collector.Finish());
    }
    TRAJLDP_RETURN_NOT_OK(finish_and_check(std::move(outputs), watch,
                                           &result));
    return result;
  };

  // --- Leg 2: the same frames through loopback TCP, K shards. --------
  auto run_loopback = [&](size_t num_shards) -> StatusOr<LegResult> {
    core::ShardPlan plan;
    plan.num_shards = num_shards;
    plan.strategy = core::ShardPlan::Strategy::kRange;
    plan.num_users = num_users;
    auto sharded = core::PartitionByShard(plan, io::ReportBatch(reports));
    std::vector<std::vector<std::string>> frames(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      auto encoded = encode_frames(sharded[s]);
      if (!encoded.ok()) return encoded.status();
      frames[s] = std::move(*encoded);
    }

    mech->domain().ClearCache();
    std::vector<std::vector<core::UserRelease>> outputs(num_shards);
    std::vector<std::unique_ptr<core::StreamingCollector>> collectors;
    std::vector<std::unique_ptr<net::IngestServer>> servers;
    LegResult result;
    Stopwatch watch;
    for (size_t s = 0; s < num_shards; ++s) {
      collectors.push_back(std::make_unique<core::StreamingCollector>(
          &*mech, kSeed,
          [&outputs, s](core::UserRelease release) {
            outputs[s].push_back(std::move(release));
          },
          collector_config));
      net::IngestServer::Options options;
      options.expected_range = plan.RangeOf(s);
      auto server = net::IngestServer::Start(collectors.back().get(),
                                             options);
      if (!server.ok()) return server.status();
      servers.push_back(std::move(*server));
    }
    for (size_t s = 0; s < num_shards; ++s) {
      net::ReportClient client("127.0.0.1", servers[s]->port());
      // An empty shard still gets one keep-alive frame: the drain loop
      // below waits for each server's client to connect and close.
      if (frames[s].empty()) {
        TRAJLDP_RETURN_NOT_OK(client.SendBatch({}));
      }
      for (const std::string& frame : frames[s]) {
        TRAJLDP_RETURN_NOT_OK(client.SendFrame(frame));
      }
      client.Close();
    }
    // Drain: every client has disconnected; frames are queued at worst.
    for (size_t s = 0; s < num_shards; ++s) {
      while (servers[s]->stats().connections_closed < 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      servers[s]->Shutdown();
      TRAJLDP_RETURN_NOT_OK(servers[s]->first_connection_error());
      TRAJLDP_RETURN_NOT_OK(collectors[s]->Finish());
    }
    TRAJLDP_RETURN_NOT_OK(finish_and_check(std::move(outputs), watch,
                                           &result));
    return result;
  };

  // --- Leg 3: exactly-once — journaled server, sequenced client. -----
  // The full durability tax in one number: every frame is appended to
  // the journal and fsynced (per `sync`) before its ack releases the
  // client's window, the server runs sequence dedup, and the collector
  // runs the per-user-id backstop. SendBatch encodes inside the timed
  // region (the sequence stamp is per-frame), which only biases the
  // ratio AGAINST this leg.
  auto run_journaled =
      [&](io::FrameJournal::SyncPolicy sync) -> StatusOr<LegResult> {
    const std::string journal_path =
        (std::filesystem::temp_directory_path() / "bench_net_ingest.journal")
            .string();
    std::filesystem::remove(journal_path);
    mech->domain().ClearCache();
    std::vector<std::vector<core::UserRelease>> outputs(1);
    LegResult result;
    Stopwatch watch;
    {
      auto journaled_config = collector_config;
      journaled_config.dedup_user_ids = true;
      core::StreamingCollector collector(
          &*mech, kSeed,
          [&outputs](core::UserRelease release) {
            outputs[0].push_back(std::move(release));
          },
          journaled_config);
      net::IngestServer::Options options;
      options.expected_range = std::pair<uint64_t, uint64_t>(0, num_users);
      options.journal_path = journal_path;
      options.journal_options.sync = sync;
      options.journal_options.sync_every_bytes = 64u << 10;
      auto server = net::IngestServer::Start(&collector, options);
      if (!server.ok()) return server.status();

      net::ReportClient::Options client_options;
      client_options.enable_sequencing = true;
      client_options.stream_id = 1;
      net::ReportClient client("127.0.0.1", (*server)->port(),
                               client_options);
      for (size_t begin = 0; begin < reports.size(); begin += kBatchSize) {
        const size_t end = std::min(begin + kBatchSize, reports.size());
        TRAJLDP_RETURN_NOT_OK(
            client.SendBatch(std::span<const io::WireReport>(
                reports.data() + begin, end - begin)));
      }
      TRAJLDP_RETURN_NOT_OK(client.Flush());
      client.Close();
      while ((*server)->stats().connections_closed < 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      (*server)->Shutdown();
      TRAJLDP_RETURN_NOT_OK((*server)->first_connection_error());
      TRAJLDP_RETURN_NOT_OK(collector.Finish());
    }
    TRAJLDP_RETURN_NOT_OK(finish_and_check(std::move(outputs), watch,
                                           &result));
    std::filesystem::remove(journal_path);
    return result;
  };

  // --- Leg 4: connection churn — the million-device shape, scaled. ---
  // The reactor claim under test: concurrency costs fds and buffers,
  // not threads. Hold `target_conns` simultaneous device connections
  // on ONE server, then stream every report through them one frame per
  // user, round-robin — so each held connection actually carries work —
  // and bit-compare the merged output. Thread-per-connection dies here
  // (10k stacks); the reactor must not.
  //
  // The client ends live in a forked dialer child: each held connection
  // costs one fd in the server process and one in the child, so a 20k
  // RLIMIT_NOFILE (which CAP_SYS_RESOURCE-less containers cannot raise)
  // still fits 10k simultaneous connections per side. The fork happens
  // before the collector spawns its worker threads; the child touches
  // nothing but the pre-encoded frames and its pipes, and leaves via
  // _exit.
  struct ChurnResult {
    double seconds = 0.0;
    size_t target = 0;      // what was asked for
    size_t required = 0;    // target after the (announced) rlimit cap
    size_t concurrent = 0;  // simultaneously-open connections achieved
    bool identical = false;
    /// GET /metrics answered 200 with the core ingest series, non-zero,
    /// WHILE the held connections streamed their frames.
    bool scrape_ok = false;
  };
  auto http_get = [](uint16_t port, const std::string& path) -> std::string {
    auto socket = net::TcpConnect("127.0.0.1", port);
    if (!socket.ok()) return "";
    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: bench\r\n\r\n";
    if (!net::SendAll(*socket, request).ok()) return "";
    std::string response;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(socket->fd(), buf, sizeof(buf), 0);
      if (n <= 0) break;
      response.append(buf, static_cast<size_t>(n));
    }
    return response;
  };
  auto run_churn = [&](size_t target_conns) -> StatusOr<ChurnResult> {
    target_conns = std::max<size_t>(1, target_conns);
    // One report per frame: every connection transports real work.
    io::WireEncodeOptions encode;
    encode.include_user_range = true;
    std::vector<std::string> frames(reports.size());
    for (size_t i = 0; i < reports.size(); ++i) {
      auto frame = io::EncodeReportBatch(
          std::span<const io::WireReport>(reports.data() + i, 1), encode);
      if (!frame.ok()) return frame.status();
      frames[i] = std::move(*frame);
    }

    // Raise RLIMIT_NOFILE as far as the environment allows, then cap
    // the target to what fits — loudly, never silently.
    struct rlimit lim {};
    getrlimit(RLIMIT_NOFILE, &lim);
    const rlim_t wanted = static_cast<rlim_t>(target_conns + 2048);
    if (lim.rlim_cur < wanted) {
      struct rlimit raised = lim;
      raised.rlim_cur = wanted;
      raised.rlim_max = std::max(lim.rlim_max, wanted);
      if (setrlimit(RLIMIT_NOFILE, &raised) != 0) {
        raised = lim;
        raised.rlim_cur = lim.rlim_max;  // soft -> hard always allowed
        (void)setrlimit(RLIMIT_NOFILE, &raised);
      }
      getrlimit(RLIMIT_NOFILE, &lim);
    }
    const size_t capacity =
        lim.rlim_cur > 1024 ? static_cast<size_t>(lim.rlim_cur) - 1024 : 0;
    ChurnResult result;
    result.target = target_conns;
    const size_t conns = std::min(target_conns, capacity);
    result.required = conns;
    if (conns < target_conns) {
      std::printf(
          "churn leg: RLIMIT_NOFILE %llu caps concurrent connections at "
          "%zu (target %zu)\n",
          static_cast<unsigned long long>(lim.rlim_cur), conns,
          target_conns);
    }

    constexpr size_t kDialChunk = 256;  // < server backlog, see below
    auto read_full = [](int fd, void* buf, size_t len) -> bool {
      char* p = static_cast<char*>(buf);
      while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        p += n;
        len -= static_cast<size_t>(n);
      }
      return true;
    };
    auto write_full = [](int fd, const void* buf, size_t len) -> bool {
      const char* p = static_cast<const char*>(buf);
      while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        p += n;
        len -= static_cast<size_t>(n);
      }
      return true;
    };

    int to_child[2];
    int to_parent[2];
    if (::pipe(to_child) != 0 || ::pipe(to_parent) != 0) {
      return Status::Internal("pipe: " + std::string(std::strerror(errno)));
    }
    const pid_t child = ::fork();
    if (child < 0) {
      return Status::Internal("fork: " + std::string(std::strerror(errno)));
    }
    if (child == 0) {
      // --- Dialer child. Protocol, one byte per step:
      //   parent -> child: u16 port, then 'g' per dial chunk, then 's'
      //   child -> parent: 'k' after each chunk dialed, 'd' when closed
      ::close(to_child[1]);
      ::close(to_parent[0]);
      uint16_t port = 0;
      if (!read_full(to_child[0], &port, sizeof(port))) _exit(2);
      std::vector<net::Socket> held;
      held.reserve(conns);
      while (held.size() < conns) {
        const size_t chunk = std::min(kDialChunk, conns - held.size());
        for (size_t i = 0; i < chunk; ++i) {
          auto conn = net::TcpConnect("127.0.0.1", port);
          if (!conn.ok()) _exit(3);
          held.push_back(std::move(*conn));
        }
        char token = 'k';
        if (!write_full(to_parent[1], &token, 1)) _exit(2);
        if (!read_full(to_child[0], &token, 1) || token != 'g') _exit(2);
      }
      char token = 0;
      if (!read_full(to_child[0], &token, 1) || token != 's') _exit(2);
      for (size_t i = 0; i < frames.size(); ++i) {
        if (!net::WriteFrameToSocket(held[i % held.size()], frames[i])
                 .ok()) {
          _exit(4);
        }
      }
      for (net::Socket& conn : held) conn.Close();
      token = 'd';
      if (!write_full(to_parent[1], &token, 1)) _exit(2);
      _exit(0);
    }
    ::close(to_child[0]);
    ::close(to_parent[1]);
    auto fail = [&](const std::string& what) -> Status {
      ::close(to_child[1]);
      ::close(to_parent[0]);
      ::kill(child, SIGKILL);
      int wstatus = 0;
      ::waitpid(child, &wstatus, 0);
      return Status::Internal("churn leg: " + what);
    };

    mech->domain().ClearCache();
    std::vector<std::vector<core::UserRelease>> outputs(1);
    Stopwatch watch;
    {
      core::StreamingCollector collector(
          &*mech, kSeed,
          [&outputs](core::UserRelease release) {
            outputs[0].push_back(std::move(release));
          },
          collector_config);
      net::IngestServer::Options options;
      options.expected_range = std::pair<uint64_t, uint64_t>(0, num_users);
      options.backlog = 1024;
      auto server = net::IngestServer::Start(&collector, options);
      if (!server.ok()) return server.status();
      // The scrape-under-load probe: an admin endpoint on the ingest
      // registry, hit while every held connection streams frames. Shut
      // down BEFORE the ingest server dies — its collection hook must
      // not run against a destroyed server.
      auto admin = obs::AdminServer::Start((*server)->metrics());
      if (!admin.ok()) return fail("admin endpoint failed to start");

      const uint16_t port = (*server)->port();
      if (!write_full(to_child[1], &port, sizeof(port))) {
        return fail("child died before the ramp");
      }
      // Ramp: ack each dialed chunk only once the server has adopted
      // it, so the listen backlog never overflows into SYN retries.
      size_t dialed = 0;
      while (dialed < conns) {
        char token = 0;
        if (!read_full(to_parent[0], &token, 1) || token != 'k') {
          return fail("dialer exited mid-ramp");
        }
        dialed += std::min(kDialChunk, conns - dialed);
        while ((*server)->stats().connections_accepted < dialed) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        token = 'g';
        if (!write_full(to_child[1], &token, 1)) {
          return fail("dialer exited mid-ramp");
        }
      }
      // The claim being gated: all of them open AT ONCE, all adopted.
      const auto ramp_stats = (*server)->stats();
      result.concurrent =
          ramp_stats.connections_accepted - ramp_stats.connections_closed;

      char token = 's';
      if (!write_full(to_child[1], &token, 1)) {
        return fail("dialer exited before sending");
      }
      // Scrape while the dialer streams: the endpoint must answer with
      // valid exposition text carrying non-zero core series even with
      // every connection live and the reactors busy.
      {
        const std::string scrape = http_get((*admin)->port(), "/metrics");
        bool accepted_positive = false;
        // Newline-anchored: the bare name also appears in # HELP/# TYPE.
        const std::string needle =
            "\ntrajldp_ingest_connections_accepted_total ";
        if (const size_t pos = scrape.find(needle);
            pos != std::string::npos) {
          accepted_positive =
              std::atof(scrape.c_str() + pos + needle.size()) > 0.0;
        }
        result.scrape_ok =
            scrape.find("HTTP/1.1 200 OK") != std::string::npos &&
            scrape.find("# TYPE trajldp_ingest_frames_total counter") !=
                std::string::npos &&
            accepted_positive;
      }
      if (!read_full(to_parent[0], &token, 1) || token != 'd') {
        return fail("dialer exited while sending");
      }
      while ((*server)->stats().connections_closed <
             (*server)->stats().connections_accepted) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      (*admin)->Shutdown();
      (*server)->Shutdown();
      TRAJLDP_RETURN_NOT_OK((*server)->first_connection_error());
      TRAJLDP_RETURN_NOT_OK(collector.Finish());
    }
    ::close(to_child[1]);
    ::close(to_parent[0]);
    int wstatus = 0;
    ::waitpid(child, &wstatus, 0);
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
      return Status::Internal("churn dialer child failed, status " +
                              std::to_string(wstatus));
    }
    auto merged = core::MergeShardReleases(std::move(outputs), num_users);
    result.seconds = watch.ElapsedSeconds();
    if (!merged.ok()) return merged.status();
    result.identical = Identical(*merged, reference);
    return result;
  };

  // Telemetry overhead: alternate untelemetered (stage timing off) and
  // telemetered in-memory runs, best of 3 each. Alternating cancels
  // slow drift (cache warmth, cpu frequency); best-of damps scheduler
  // noise. The telemetered best doubles as the in-memory leg below.
  LegResult inmem_untimed;
  LegResult inmem;
  bool inmem_identical = true;
  for (int round = 0; round < 3; ++round) {
    auto untimed = run_inmem(/*stage_timing=*/false);
    if (!untimed.ok()) {
      std::cerr << "in-memory (untelemetered) leg: " << untimed.status()
                << "\n";
      return 1;
    }
    auto timed = run_inmem(/*stage_timing=*/true);
    if (!timed.ok()) {
      std::cerr << "in-memory leg: " << timed.status() << "\n";
      return 1;
    }
    inmem_identical = inmem_identical && untimed->identical &&
                      timed->identical;
    if (untimed->users_per_sec > inmem_untimed.users_per_sec) {
      inmem_untimed = *untimed;
    }
    if (timed->users_per_sec > inmem.users_per_sec) inmem = *timed;
  }
  inmem.identical = inmem_identical;
  const double metrics_overhead_ratio =
      inmem_untimed.users_per_sec / inmem.users_per_sec;
  const bool metrics_within = metrics_overhead_ratio <= 1.05;
  auto loopback = run_loopback(1);
  if (!loopback.ok()) {
    std::cerr << "loopback leg: " << loopback.status() << "\n";
    return 1;
  }
  auto loopback2 = run_loopback(2);
  if (!loopback2.ok()) {
    std::cerr << "loopback 2-shard leg: " << loopback2.status() << "\n";
    return 1;
  }
  // The gated journal configuration is batched fsync (every 64 KiB);
  // fsync-per-record is measured too but only reported — it is the
  // deliberately paranoid end of the policy spectrum.
  auto journaled = run_journaled(io::FrameJournal::SyncPolicy::kEveryBytes);
  if (!journaled.ok()) {
    std::cerr << "journaled (batched fsync) leg: " << journaled.status()
              << "\n";
    return 1;
  }
  auto journaled_everyrec =
      run_journaled(io::FrameJournal::SyncPolicy::kEveryRecord);
  if (!journaled_everyrec.ok()) {
    std::cerr << "journaled (fsync-per-record) leg: "
              << journaled_everyrec.status() << "\n";
    return 1;
  }
  auto churn = run_churn(churn_conns);
  if (!churn.ok()) {
    std::cerr << "churn leg: " << churn.status() << "\n";
    return 1;
  }

  const double ratio = inmem.users_per_sec / loopback->users_per_sec;
  const bool within_2x = ratio <= 2.0;
  const double journaled_ratio =
      loopback->users_per_sec / journaled->users_per_sec;
  const bool journaled_within_2x = journaled_ratio <= 2.0;
  const bool bit_identical =
      inmem.identical && loopback->identical && loopback2->identical &&
      journaled->identical && journaled_everyrec->identical;
  // The churn gate: the reactor must actually have held the requested
  // connection count open at once (modulo a loudly-announced rlimit
  // cap) AND the work carried over those connections must merge
  // bit-identically.
  const bool churn_held = churn->concurrent >= churn->required;
  std::printf("in-memory ingest : %8.0f users/s (%.3f s)%s\n",
              inmem.users_per_sec, inmem.seconds,
              inmem.identical ? "" : "  MISMATCH");
  std::printf("in-memory, stage timing off: %8.0f users/s (%.3f s)\n",
              inmem_untimed.users_per_sec, inmem_untimed.seconds);
  std::printf("loopback ingest  : %8.0f users/s (%.3f s)%s\n",
              loopback->users_per_sec, loopback->seconds,
              loopback->identical ? "" : "  MISMATCH");
  std::printf("loopback 2 shards: %8.0f users/s (%.3f s)%s\n",
              loopback2->users_per_sec, loopback2->seconds,
              loopback2->identical ? "" : "  MISMATCH");
  std::printf("journaled (64KiB fsync): %8.0f users/s (%.3f s)%s\n",
              journaled->users_per_sec, journaled->seconds,
              journaled->identical ? "" : "  MISMATCH");
  std::printf("journaled (per-record fsync): %8.0f users/s (%.3f s)%s\n",
              journaled_everyrec->users_per_sec, journaled_everyrec->seconds,
              journaled_everyrec->identical ? "" : "  MISMATCH");
  std::printf("churn (%zu conns held): %zu concurrent (%.3f s)%s%s\n",
              churn->required, churn->concurrent, churn->seconds,
              churn_held ? "" : "  UNDER TARGET",
              churn->identical ? "" : "  MISMATCH");
  std::printf("in-memory / loopback ratio: %.2fx (gate <= 2x): %s\n", ratio,
              within_2x ? "PASS" : "FAIL");
  std::printf("loopback / journaled ratio: %.2fx (gate <= 2x): %s\n",
              journaled_ratio, journaled_within_2x ? "PASS" : "FAIL");
  std::printf("telemetry overhead ratio: %.3fx (gate <= 1.05x): %s\n",
              metrics_overhead_ratio, metrics_within ? "PASS" : "FAIL");
  std::printf("/metrics scrape under churn load: %s\n",
              churn->scrape_ok ? "PASS" : "FAIL");
  std::cout << "all legs bit-identical to batch engine: "
            << (bit_identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << " for writing\n";
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"net_ingest\",\n"
        << "  \"num_users\": " << num_users << ",\n"
        << "  \"num_regions\": " << num_regions << ",\n"
        << "  \"ngram_n\": " << kN << ",\n"
        << "  \"epsilon\": " << kEpsilon << ",\n"
        << "  \"trajectory_len\": " << kTrajectoryLen << ",\n"
        << "  \"batch_size\": " << kBatchSize << ",\n"
        << "  \"hw_threads\": " << hw_threads << ",\n"
        << "  \"inmem_seconds\": " << inmem.seconds << ",\n"
        << "  \"inmem_users_per_sec\": " << inmem.users_per_sec << ",\n"
        << "  \"inmem_untelemetered_users_per_sec\": "
        << inmem_untimed.users_per_sec << ",\n"
        << "  \"metrics_overhead_ratio\": " << metrics_overhead_ratio
        << ",\n"
        << "  \"metrics_within_1_05x\": "
        << (metrics_within ? "true" : "false") << ",\n"
        << "  \"churn_metrics_scrape_ok\": "
        << (churn->scrape_ok ? "true" : "false") << ",\n"
        << "  \"loopback_seconds\": " << loopback->seconds << ",\n"
        << "  \"loopback_users_per_sec\": " << loopback->users_per_sec
        << ",\n"
        << "  \"loopback_2shard_users_per_sec\": "
        << loopback2->users_per_sec << ",\n"
        << "  \"journaled_seconds\": " << journaled->seconds << ",\n"
        << "  \"journaled_users_per_sec\": " << journaled->users_per_sec
        << ",\n"
        << "  \"journaled_everyrec_users_per_sec\": "
        << journaled_everyrec->users_per_sec << ",\n"
        << "  \"loopback_over_journaled\": " << journaled_ratio << ",\n"
        << "  \"inmem_over_loopback\": " << ratio << ",\n"
        << "  \"loopback_within_2x\": " << (within_2x ? "true" : "false")
        << ",\n"
        << "  \"journaled_within_2x\": "
        << (journaled_within_2x ? "true" : "false") << ",\n"
        << "  \"churn_target_connections\": " << churn->target << ",\n"
        << "  \"churn_concurrent_connections\": " << churn->concurrent
        << ",\n"
        << "  \"churn_seconds\": " << churn->seconds << ",\n"
        << "  \"churn_bit_identical\": "
        << (churn->identical ? "true" : "false") << ",\n"
        << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
        << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (!bit_identical || !churn->identical) return 2;
  return within_2x && journaled_within_2x && churn_held && metrics_within &&
                 churn->scrape_ok
             ? 0
             : 3;
}

}  // namespace
}  // namespace trajldp

int main(int argc, char** argv) {
  // Env default first; an explicit --users flag wins over it.
  size_t num_users = 5000;
  if (const char* env = std::getenv("TRAJLDP_BENCH_NET_USERS")) {
    num_users = static_cast<size_t>(std::atoll(env));
  }
  size_t churn_conns = 10000;
  if (const char* env = std::getenv("TRAJLDP_BENCH_NET_CHURN_CONNS")) {
    churn_conns = static_cast<size_t>(std::atoll(env));
  }
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      num_users = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--churn-conns") == 0 && i + 1 < argc) {
      churn_conns = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--json PATH] [--users N] [--churn-conns C]\n";
      return 1;
    }
  }
  return trajldp::Run(num_users, churn_conns, json_path);
}
