// Networked-ingest benchmark: stream the same wire frames into a
// StreamingCollector several ways — pushed directly in memory, over a
// real loopback TCP connection (net::ReportClient → net::IngestServer),
// and over loopback in exactly-once trim (sequenced client + journaling
// server, batched and per-record fsync) — on the same ~200-region /
// n = 2 world as bench_stream_ingest, and compare. Two gates: loopback
// throughput within 2× of in-memory (the socket hop must not dominate a
// pipeline whose cost is reconstruction), journaled ingest with batched
// fsync within 2× of raw loopback (durability must not either), and
// every leg bit-identical to BatchReleaseEngine::ReleaseAllFull.
//
//   ./build/bench_net_ingest [--json PATH] [--users N]
//
// The timed section covers frame delivery (push or socket) through
// Finish(): decode + validate + reconstruct on the worker pool + merge.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/shard_plan.h"
#include "core/streaming_collector.h"
#include "io/wire.h"
#include "net/ingest_server.h"
#include "net/report_client.h"
#include "test_support.h"

namespace trajldp {
namespace {

using core::FullRelease;
using region::RegionId;

bool Identical(const std::vector<FullRelease>& a,
               const std::vector<FullRelease>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].regions != b[i].regions ||
        !(a[i].trajectory == b[i].trajectory) ||
        a[i].poi_attempts != b[i].poi_attempts ||
        a[i].smoothed != b[i].smoothed) {
      return false;
    }
  }
  return true;
}

struct LegResult {
  double seconds = 0.0;
  double users_per_sec = 0.0;
  bool identical = false;
};

int Run(size_t num_users, const std::string& json_path) {
  constexpr int kN = 2;
  constexpr double kEpsilon = 5.0;
  constexpr size_t kTrajectoryLen = 5;
  constexpr size_t kBatchSize = 256;
  constexpr uint64_t kSeed = 20260729;

  // Same ~200-region world as bench_stream_ingest / bench_batch_e2e.
  auto db = bench::MakeLatticeDb(2000);
  if (!db.ok()) {
    std::cerr << db.status() << "\n";
    return 1;
  }
  const auto time = *model::TimeDomain::Create(10);
  core::NGramConfig config;
  config.n = kN;
  config.epsilon = kEpsilon;
  config.decomposition.grid_size = 5;
  config.decomposition.coarse_grids = {1};
  config.decomposition.base_interval_minutes = 1440;
  config.decomposition.merge.kappa = 1;
  config.reachability.speed_kmh = 8.0;
  config.reachability.reference_gap_minutes = 30;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  if (!mech.ok()) {
    std::cerr << mech.status() << "\n";
    return 1;
  }
  const size_t num_regions = mech->decomposition().num_regions();
  const size_t hw_threads = ThreadPool::DefaultThreadCount();
  std::cout << "world: " << num_regions << " regions, " << num_users
            << " users, n=" << kN << ", L=" << kTrajectoryLen
            << ", batch=" << kBatchSize << ", hw threads: " << hw_threads
            << "\n";

  std::vector<region::RegionTrajectory> users(num_users);
  {
    Rng rng(4242);
    for (auto& tau : users) {
      for (size_t i = 0; i < kTrajectoryLen; ++i) {
        tau.push_back(static_cast<RegionId>(rng.UniformUint64(num_regions)));
      }
    }
  }

  // Reference and device-side reports.
  std::vector<FullRelease> reference;
  {
    core::BatchReleaseEngine engine(&*mech);
    auto result = engine.ReleaseAllFull(users, kSeed);
    if (!result.ok()) {
      std::cerr << "batch engine: " << result.status() << "\n";
      return 1;
    }
    reference = std::move(*result);
  }
  io::ReportBatch reports;
  {
    core::BatchReleaseEngine engine(&mech->perturber());
    auto perturbed = engine.ReleaseAll(users, kSeed);
    if (!perturbed.ok()) {
      std::cerr << "device perturb: " << perturbed.status() << "\n";
      return 1;
    }
    reports = core::MakeWireReports(users, std::move(*perturbed),
                                    mech->perturber());
  }

  // Pre-encode the frames once (framing is the devices' cost) with the
  // user-range routing field, exactly as ReportClient::SendBatch would.
  auto encode_frames =
      [&](const io::ReportBatch& shard) -> StatusOr<std::vector<std::string>> {
    io::WireEncodeOptions encode;
    encode.include_user_range = true;
    std::vector<std::string> frames;
    for (size_t begin = 0; begin < shard.size(); begin += kBatchSize) {
      const size_t end = std::min(begin + kBatchSize, shard.size());
      auto frame = io::EncodeReportBatch(
          std::span<const io::WireReport>(shard.data() + begin, end - begin),
          encode);
      if (!frame.ok()) return frame.status();
      frames.push_back(std::move(*frame));
    }
    return frames;
  };

  core::StreamingCollector::Config collector_config;
  collector_config.num_threads = std::max<size_t>(1, hw_threads);
  collector_config.queue_capacity = 8;

  auto finish_and_check =
      [&](std::vector<std::vector<core::UserRelease>> outputs,
          Stopwatch& watch, LegResult* result) -> Status {
    auto merged = core::MergeShardReleases(std::move(outputs), num_users);
    result->seconds = watch.ElapsedSeconds();
    if (!merged.ok()) return merged.status();
    result->users_per_sec =
        static_cast<double>(num_users) / result->seconds;
    result->identical = Identical(*merged, reference);
    return Status::Ok();
  };

  // --- Leg 1: in-memory PushEncoded (the BENCH_stream shape). --------
  auto run_inmem = [&]() -> StatusOr<LegResult> {
    auto frames = encode_frames(reports);
    if (!frames.ok()) return frames.status();
    mech->domain().ClearCache();
    std::vector<std::vector<core::UserRelease>> outputs(1);
    LegResult result;
    Stopwatch watch;
    {
      core::StreamingCollector collector(
          &*mech, kSeed,
          [&outputs](core::UserRelease release) {
            outputs[0].push_back(std::move(release));
          },
          collector_config);
      for (std::string& frame : *frames) {
        TRAJLDP_RETURN_NOT_OK(collector.PushEncoded(std::move(frame)));
      }
      TRAJLDP_RETURN_NOT_OK(collector.Finish());
    }
    TRAJLDP_RETURN_NOT_OK(finish_and_check(std::move(outputs), watch,
                                           &result));
    return result;
  };

  // --- Leg 2: the same frames through loopback TCP, K shards. --------
  auto run_loopback = [&](size_t num_shards) -> StatusOr<LegResult> {
    core::ShardPlan plan;
    plan.num_shards = num_shards;
    plan.strategy = core::ShardPlan::Strategy::kRange;
    plan.num_users = num_users;
    auto sharded = core::PartitionByShard(plan, io::ReportBatch(reports));
    std::vector<std::vector<std::string>> frames(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      auto encoded = encode_frames(sharded[s]);
      if (!encoded.ok()) return encoded.status();
      frames[s] = std::move(*encoded);
    }

    mech->domain().ClearCache();
    std::vector<std::vector<core::UserRelease>> outputs(num_shards);
    std::vector<std::unique_ptr<core::StreamingCollector>> collectors;
    std::vector<std::unique_ptr<net::IngestServer>> servers;
    LegResult result;
    Stopwatch watch;
    for (size_t s = 0; s < num_shards; ++s) {
      collectors.push_back(std::make_unique<core::StreamingCollector>(
          &*mech, kSeed,
          [&outputs, s](core::UserRelease release) {
            outputs[s].push_back(std::move(release));
          },
          collector_config));
      net::IngestServer::Options options;
      options.expected_range = plan.RangeOf(s);
      auto server = net::IngestServer::Start(collectors.back().get(),
                                             options);
      if (!server.ok()) return server.status();
      servers.push_back(std::move(*server));
    }
    for (size_t s = 0; s < num_shards; ++s) {
      net::ReportClient client("127.0.0.1", servers[s]->port());
      // An empty shard still gets one keep-alive frame: the drain loop
      // below waits for each server's client to connect and close.
      if (frames[s].empty()) {
        TRAJLDP_RETURN_NOT_OK(client.SendBatch({}));
      }
      for (const std::string& frame : frames[s]) {
        TRAJLDP_RETURN_NOT_OK(client.SendFrame(frame));
      }
      client.Close();
    }
    // Drain: every client has disconnected; frames are queued at worst.
    for (size_t s = 0; s < num_shards; ++s) {
      while (servers[s]->stats().connections_closed < 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      servers[s]->Shutdown();
      TRAJLDP_RETURN_NOT_OK(servers[s]->first_connection_error());
      TRAJLDP_RETURN_NOT_OK(collectors[s]->Finish());
    }
    TRAJLDP_RETURN_NOT_OK(finish_and_check(std::move(outputs), watch,
                                           &result));
    return result;
  };

  // --- Leg 3: exactly-once — journaled server, sequenced client. -----
  // The full durability tax in one number: every frame is appended to
  // the journal and fsynced (per `sync`) before its ack releases the
  // client's window, the server runs sequence dedup, and the collector
  // runs the per-user-id backstop. SendBatch encodes inside the timed
  // region (the sequence stamp is per-frame), which only biases the
  // ratio AGAINST this leg.
  auto run_journaled =
      [&](io::FrameJournal::SyncPolicy sync) -> StatusOr<LegResult> {
    const std::string journal_path =
        (std::filesystem::temp_directory_path() / "bench_net_ingest.journal")
            .string();
    std::filesystem::remove(journal_path);
    mech->domain().ClearCache();
    std::vector<std::vector<core::UserRelease>> outputs(1);
    LegResult result;
    Stopwatch watch;
    {
      auto journaled_config = collector_config;
      journaled_config.dedup_user_ids = true;
      core::StreamingCollector collector(
          &*mech, kSeed,
          [&outputs](core::UserRelease release) {
            outputs[0].push_back(std::move(release));
          },
          journaled_config);
      net::IngestServer::Options options;
      options.expected_range = std::pair<uint64_t, uint64_t>(0, num_users);
      options.journal_path = journal_path;
      options.journal_options.sync = sync;
      options.journal_options.sync_every_bytes = 64u << 10;
      auto server = net::IngestServer::Start(&collector, options);
      if (!server.ok()) return server.status();

      net::ReportClient::Options client_options;
      client_options.enable_sequencing = true;
      client_options.stream_id = 1;
      net::ReportClient client("127.0.0.1", (*server)->port(),
                               client_options);
      for (size_t begin = 0; begin < reports.size(); begin += kBatchSize) {
        const size_t end = std::min(begin + kBatchSize, reports.size());
        TRAJLDP_RETURN_NOT_OK(
            client.SendBatch(std::span<const io::WireReport>(
                reports.data() + begin, end - begin)));
      }
      TRAJLDP_RETURN_NOT_OK(client.Flush());
      client.Close();
      while ((*server)->stats().connections_closed < 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      (*server)->Shutdown();
      TRAJLDP_RETURN_NOT_OK((*server)->first_connection_error());
      TRAJLDP_RETURN_NOT_OK(collector.Finish());
    }
    TRAJLDP_RETURN_NOT_OK(finish_and_check(std::move(outputs), watch,
                                           &result));
    std::filesystem::remove(journal_path);
    return result;
  };

  auto inmem = run_inmem();
  if (!inmem.ok()) {
    std::cerr << "in-memory leg: " << inmem.status() << "\n";
    return 1;
  }
  auto loopback = run_loopback(1);
  if (!loopback.ok()) {
    std::cerr << "loopback leg: " << loopback.status() << "\n";
    return 1;
  }
  auto loopback2 = run_loopback(2);
  if (!loopback2.ok()) {
    std::cerr << "loopback 2-shard leg: " << loopback2.status() << "\n";
    return 1;
  }
  // The gated journal configuration is batched fsync (every 64 KiB);
  // fsync-per-record is measured too but only reported — it is the
  // deliberately paranoid end of the policy spectrum.
  auto journaled = run_journaled(io::FrameJournal::SyncPolicy::kEveryBytes);
  if (!journaled.ok()) {
    std::cerr << "journaled (batched fsync) leg: " << journaled.status()
              << "\n";
    return 1;
  }
  auto journaled_everyrec =
      run_journaled(io::FrameJournal::SyncPolicy::kEveryRecord);
  if (!journaled_everyrec.ok()) {
    std::cerr << "journaled (fsync-per-record) leg: "
              << journaled_everyrec.status() << "\n";
    return 1;
  }

  const double ratio = inmem->users_per_sec / loopback->users_per_sec;
  const bool within_2x = ratio <= 2.0;
  const double journaled_ratio =
      loopback->users_per_sec / journaled->users_per_sec;
  const bool journaled_within_2x = journaled_ratio <= 2.0;
  const bool bit_identical =
      inmem->identical && loopback->identical && loopback2->identical &&
      journaled->identical && journaled_everyrec->identical;
  std::printf("in-memory ingest : %8.0f users/s (%.3f s)%s\n",
              inmem->users_per_sec, inmem->seconds,
              inmem->identical ? "" : "  MISMATCH");
  std::printf("loopback ingest  : %8.0f users/s (%.3f s)%s\n",
              loopback->users_per_sec, loopback->seconds,
              loopback->identical ? "" : "  MISMATCH");
  std::printf("loopback 2 shards: %8.0f users/s (%.3f s)%s\n",
              loopback2->users_per_sec, loopback2->seconds,
              loopback2->identical ? "" : "  MISMATCH");
  std::printf("journaled (64KiB fsync): %8.0f users/s (%.3f s)%s\n",
              journaled->users_per_sec, journaled->seconds,
              journaled->identical ? "" : "  MISMATCH");
  std::printf("journaled (per-record fsync): %8.0f users/s (%.3f s)%s\n",
              journaled_everyrec->users_per_sec, journaled_everyrec->seconds,
              journaled_everyrec->identical ? "" : "  MISMATCH");
  std::printf("in-memory / loopback ratio: %.2fx (gate <= 2x): %s\n", ratio,
              within_2x ? "PASS" : "FAIL");
  std::printf("loopback / journaled ratio: %.2fx (gate <= 2x): %s\n",
              journaled_ratio, journaled_within_2x ? "PASS" : "FAIL");
  std::cout << "all legs bit-identical to batch engine: "
            << (bit_identical ? "yes" : "NO — DETERMINISM BUG") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << " for writing\n";
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"net_ingest\",\n"
        << "  \"num_users\": " << num_users << ",\n"
        << "  \"num_regions\": " << num_regions << ",\n"
        << "  \"ngram_n\": " << kN << ",\n"
        << "  \"epsilon\": " << kEpsilon << ",\n"
        << "  \"trajectory_len\": " << kTrajectoryLen << ",\n"
        << "  \"batch_size\": " << kBatchSize << ",\n"
        << "  \"hw_threads\": " << hw_threads << ",\n"
        << "  \"inmem_seconds\": " << inmem->seconds << ",\n"
        << "  \"inmem_users_per_sec\": " << inmem->users_per_sec << ",\n"
        << "  \"loopback_seconds\": " << loopback->seconds << ",\n"
        << "  \"loopback_users_per_sec\": " << loopback->users_per_sec
        << ",\n"
        << "  \"loopback_2shard_users_per_sec\": "
        << loopback2->users_per_sec << ",\n"
        << "  \"journaled_seconds\": " << journaled->seconds << ",\n"
        << "  \"journaled_users_per_sec\": " << journaled->users_per_sec
        << ",\n"
        << "  \"journaled_everyrec_users_per_sec\": "
        << journaled_everyrec->users_per_sec << ",\n"
        << "  \"loopback_over_journaled\": " << journaled_ratio << ",\n"
        << "  \"inmem_over_loopback\": " << ratio << ",\n"
        << "  \"loopback_within_2x\": " << (within_2x ? "true" : "false")
        << ",\n"
        << "  \"journaled_within_2x\": "
        << (journaled_within_2x ? "true" : "false") << ",\n"
        << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
        << "\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (!bit_identical) return 2;
  return within_2x && journaled_within_2x ? 0 : 3;
}

}  // namespace
}  // namespace trajldp

int main(int argc, char** argv) {
  // Env default first; an explicit --users flag wins over it.
  size_t num_users = 5000;
  if (const char* env = std::getenv("TRAJLDP_BENCH_NET_USERS")) {
    num_users = static_cast<size_t>(std::atoll(env));
  }
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      num_users = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::cerr << "usage: " << argv[0] << " [--json PATH] [--users N]\n";
      return 1;
    }
  }
  return trajldp::Run(num_users, json_path);
}
