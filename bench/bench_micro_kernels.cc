// Micro-benchmarks (google-benchmark) for the hot kernels of the
// mechanism: haversine distance, Gumbel-max EM selection, the factored
// n-gram path sampler, region distance fan-out, the spatial index, the
// Viterbi reconstruction DP, and the simplex solver. Useful for tracking
// regressions in the paths that dominate Figure 9's runtime curves.
//
// The hottest kernels also record hardware counters (IPC, LLC misses
// and branch misses per item) through bench/hw_counters.h so a
// wall-clock change can be attributed to memory behaviour rather than
// guessed at. On hosts without perf_event access the counters report
// hw_available = 0 and the bench still succeeds — see docs/PERF.md.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/ngram_domain.h"
#include "core/ngram_perturber.h"
#include "core/reconstruction.h"
#include "core/viterbi_reconstructor.h"
#include "geo/latlon.h"
#include "geo/spatial_index.h"
#include "hw_counters.h"
#include "ldp/exponential_mechanism.h"
#include "lp/simplex.h"
#include "region/decomposition.h"
#include "region/region_distance.h"
#include "region/region_graph.h"
#include "test_support.h"

namespace trajldp {
namespace {

// Attaches the hardware-counter sample for the timed region to the
// benchmark's custom counters. `items` is the per-item denominator
// (n-grams sampled, DP solves, ...). Keys are stable: run_benches.sh
// gates on hw_available/ipc being present in BENCH_micro.json.
void AnnotateHw(benchmark::State& state, const bench::HwCounters& hw,
                double items) {
  state.counters["hw_available"] = hw.available() ? 1.0 : 0.0;
  state.counters["ipc"] = 0.0;
  state.counters["llc_miss_per_item"] = 0.0;
  state.counters["branch_miss_per_item"] = 0.0;
  if (!hw.available()) return;
  const bench::HwSample s = hw.Delta();
  state.counters["ipc"] = s.Ipc();
  if (items > 0.0) {
    if (hw.llc_supported()) {
      state.counters["llc_miss_per_item"] =
          static_cast<double>(s.llc_misses) / items;
    }
    state.counters["branch_miss_per_item"] =
        static_cast<double>(s.branch_misses) / items;
  }
}

void BM_Haversine(benchmark::State& state) {
  const geo::LatLon a{40.7128, -74.0060};
  const geo::LatLon b{40.7484, -73.9857};
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::HaversineKm(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_GumbelDraw(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Gumbel());
  }
}
BENCHMARK(BM_GumbelDraw);

void BM_EmSample(benchmark::State& state) {
  const size_t domain = static_cast<size_t>(state.range(0));
  auto em = ldp::ExponentialMechanism::Create(1.0, 10.0);
  std::vector<double> qualities(domain);
  Rng init(2);
  for (auto& q : qualities) q = -init.UniformDouble(0.0, 10.0);
  Rng rng(3);
  bench::HwCounters hw;
  hw.Start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(em->Sample(qualities, rng));
  }
  AnnotateHw(state, hw, static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * domain);
}
BENCHMARK(BM_EmSample)->Arg(1000)->Arg(10000)->Arg(100000);

struct RegionWorld {
  std::unique_ptr<model::PoiDatabase> db;
  std::unique_ptr<region::StcDecomposition> decomp;
  std::unique_ptr<region::RegionDistance> distance;
  std::unique_ptr<region::RegionGraph> graph;
  std::unique_ptr<core::NgramDomain> domain;
};

RegionWorld& SharedWorld(size_t num_pois) {
  static std::map<size_t, RegionWorld> cache;
  auto it = cache.find(num_pois);
  if (it != cache.end()) return it->second;
  RegionWorld world;
  auto db = bench::MakeLatticeDb(num_pois);
  world.db = std::make_unique<model::PoiDatabase>(std::move(*db));
  const auto time = *model::TimeDomain::Create(10);
  region::DecompositionConfig config;
  auto decomp = region::StcDecomposition::Build(world.db.get(), time, config);
  world.decomp =
      std::make_unique<region::StcDecomposition>(std::move(*decomp));
  world.distance =
      std::make_unique<region::RegionDistance>(world.decomp.get());
  model::ReachabilityConfig reach{8.0, 50};
  world.graph = std::make_unique<region::RegionGraph>(
      region::RegionGraph::Build(*world.decomp, reach));
  world.domain = std::make_unique<core::NgramDomain>(world.graph.get(),
                                                     world.distance.get());
  return cache.emplace(num_pois, std::move(world)).first->second;
}

void BM_RegionDistanceFanOut(benchmark::State& state) {
  RegionWorld& world = SharedWorld(static_cast<size_t>(state.range(0)));
  region::RegionId r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.distance->ToAll(r));
    r = (r + 1) % world.decomp->num_regions();
  }
  state.SetItemsProcessed(state.iterations() *
                          world.decomp->num_regions());
}
BENCHMARK(BM_RegionDistanceFanOut)->Arg(500)->Arg(2000);

void BM_BigramSample(benchmark::State& state) {
  RegionWorld& world = SharedWorld(static_cast<size_t>(state.range(0)));
  Rng rng(7);
  const region::RegionId a = 0;
  const region::RegionId b =
      static_cast<region::RegionId>(world.decomp->num_regions() / 2);
  bench::HwCounters hw;
  hw.Start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.domain->Sample({a, b}, 0.5, rng));
  }
  // One item = one n-gram draw: llc_miss_per_item is the LLC-misses-
  // per-n-gram figure the ROADMAP asks for.
  AnnotateHw(state, hw, static_cast<double>(state.iterations()));
}
BENCHMARK(BM_BigramSample)->Arg(500)->Arg(2000);

// The §5.5 DP solve on realistic inputs: a trajectory's perturbed
// n-gram set over the full region set as candidates — the layered
// argmin relaxation plus CSR build that the SoA arena layout exists
// for. Hardware counters attribute its cost between compute and
// memory.
void BM_ViterbiReconstruct(benchmark::State& state) {
  RegionWorld& world = SharedWorld(static_cast<size_t>(state.range(0)));
  const size_t num_regions = world.decomp->num_regions();
  constexpr size_t kLen = 5;
  core::NgramPerturber perturber(world.domain.get(),
                                 core::NgramPerturber::Config{2, 5.0});
  region::RegionTrajectory tau;
  for (size_t i = 0; i < kLen; ++i) {
    tau.push_back(static_cast<region::RegionId>((i * 7) % num_regions));
  }
  Rng rng(11);
  auto z = perturber.Perturb(tau, rng);
  if (!z.ok()) {
    state.SkipWithError("perturbation failed");
    return;
  }
  std::vector<region::RegionId> candidates(num_regions);
  for (size_t r = 0; r < num_regions; ++r) {
    candidates[r] = static_cast<region::RegionId>(r);
  }
  auto problem = core::ReconstructionProblem::Create(
      world.distance.get(), world.graph.get(), kLen, *z,
      std::move(candidates));
  if (!problem.ok()) {
    state.SkipWithError("problem build failed");
    return;
  }
  core::ViterbiReconstructor solver;
  auto ws = solver.NewWorkspace();
  region::RegionTrajectory out;
  bench::HwCounters hw;
  hw.Start();
  for (auto _ : state) {
    const Status status = solver.ReconstructInto(*problem, *ws, out);
    if (!status.ok()) {
      state.SkipWithError("reconstruction failed");
      return;
    }
    benchmark::DoNotOptimize(out.data());
  }
  AnnotateHw(state, hw, static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ViterbiReconstruct)->Arg(500)->Arg(2000);

void BM_SpatialIndexRadius(benchmark::State& state) {
  RegionWorld& world = SharedWorld(2000);
  const geo::LatLon center = world.db->poi(0).location;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.db->WithinRadius(center, 3.0));
  }
}
BENCHMARK(BM_SpatialIndexRadius);

void BM_SimplexSmallLp(benchmark::State& state) {
  lp::LpProblem problem;
  problem.num_vars = 2;
  problem.objective = {-3.0, -5.0};
  problem.AddConstraint({{0, 1.0}}, lp::LpProblem::Relation::kLe, 4.0);
  problem.AddConstraint({{1, 2.0}}, lp::LpProblem::Relation::kLe, 12.0);
  problem.AddConstraint({{0, 3.0}, {1, 2.0}}, lp::LpProblem::Relation::kLe,
                        18.0);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(problem));
  }
}
BENCHMARK(BM_SimplexSmallLp);

}  // namespace
}  // namespace trajldp

BENCHMARK_MAIN();
