#ifndef TRAJLDP_BENCH_HW_COUNTERS_H_
#define TRAJLDP_BENCH_HW_COUNTERS_H_

#include <cstdint>
#include <string>

namespace trajldp::bench {

/// One snapshot of the hardware counters HwCounters watches. Values are
/// multiplex-scaled (time_enabled / time_running) when the kernel had to
/// rotate events, so they are estimates under heavy PMU sharing and
/// exact otherwise.
struct HwSample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_loads = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;

  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  double LlcMissRate() const {
    return llc_loads == 0 ? 0.0
                          : static_cast<double>(llc_misses) /
                                static_cast<double>(llc_loads);
  }
};

/// \brief perf_event_open wrapper for explaining bench numbers: cycles,
/// instructions, LLC loads/misses, branch misses for the calling process
/// and (inherit=1) every thread it spawns after Start().
///
/// The harness degrades, never fails: on kernels or containers that
/// forbid counters (perf_event_paranoid, seccomp, missing PMU — the
/// normal case in CI) available() is false, unavailable_reason() says
/// why, and Delta() returns zeros. Benches must treat that as "emit the
/// keys as unavailable", not as an error — a bench that crashes without
/// a PMU would make hardware counters a regression, not an explanation.
///
/// Counters are opened per-fd (no PERF_FORMAT_GROUP: grouped reads do
/// not aggregate inherited child threads) and enabled at open; Start()
/// takes a baseline read and Delta() subtracts it, which works for
/// inherited events where ioctl(RESET) would not reach children. LLC
/// events may be individually unsupported (common on VMs) — they then
/// read 0 while cycles/instructions still measure; llc_supported()
/// distinguishes "no misses" from "no counter".
class HwCounters {
 public:
  /// Opens the counters for this process + future threads. Cheap enough
  /// to construct per measured region.
  HwCounters();
  ~HwCounters();

  HwCounters(const HwCounters&) = delete;
  HwCounters& operator=(const HwCounters&) = delete;

  /// True when at least cycles and instructions opened.
  bool available() const { return available_; }
  /// Human-readable reason when available() is false ("perf_event_open:
  /// Permission denied", …); empty when available.
  const std::string& unavailable_reason() const { return reason_; }
  /// True when the LLC load/miss pair opened (often absent under
  /// virtualisation even when core counters work).
  bool llc_supported() const { return llc_supported_; }

  /// Marks the start of the measured region (baseline read of every
  /// counter). Threads spawned after this point are counted too.
  void Start();

  /// Counter deltas since Start(), multiplex-scaled. All-zero when
  /// unavailable.
  HwSample Delta() const;

 private:
  struct Counter {
    int fd = -1;
    uint64_t base = 0;
  };
  static constexpr int kNumCounters = 5;

  uint64_t ReadScaled(int idx) const;

  Counter counters_[kNumCounters];
  bool available_ = false;
  bool llc_supported_ = false;
  std::string reason_;
};

}  // namespace trajldp::bench

#endif  // TRAJLDP_BENCH_HW_COUNTERS_H_
