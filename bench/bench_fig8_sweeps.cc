// Regenerates Figure 8 (a–i): normalized error as the experimental
// settings vary — trajectory length, privacy budget, |P|, travel speed
// (Taxi-Foursquare and Safegraph), and n-gram length (Campus).

#include "sweep_common.h"

using namespace trajldp;

int main() {
  bench::PrintHeader("Figure 8: Normalized error under parameter sweeps",
                     "paper Figure 8, §7.2");
  const int rc = bench::RunFigureSweeps(/*report_ne=*/true);
  if (rc != 0) return rc;

  bench::PrintShapeCheck(
      "Paper Figure 8: (a,e) error grows with |tau| (the per-perturbation\n"
      "budget eps' shrinks); (b,f) error falls as eps grows, with little\n"
      "drop-off below eps < 1 (noise dominates); (c,g) error is largely\n"
      "flat in |P| (reconstruction compensates); (d,h) error grows as the\n"
      "reachability constraint loosens and is worst at speed = Inf; (i)\n"
      "n = 2 is the sweet spot for NGram. NGram should sit at or near the\n"
      "bottom of every panel; PhysDist at the top.");
  return 0;
}
