// Streaming-analytics benchmark (ISSUE 9 acceptance criteria): attach a
// StreamAnalytics bundle (hotspots + PRQ sketch + windowed top-k) to
// StreamingCollector sinks via FanOutSink and verify, with the exit
// code, that
//   (a) K ∈ {1, 2, 4} shard bundles merged together finalize EXACTLY
//       what batch FindHotspots / PrqCurve compute over the materialized
//       releases of the same (seed, users), and
//   (b) running analytics inline costs less than 2× the peak RSS of
//       ingest alone (the aggregates are bounded by entities × bins, not
//       by users).
// Peak RSS per phase is measured by resetting the kernel's high-water
// mark (write "5" to /proc/self/clear_refs) and reading VmHWM after the
// phase; where the reset is unsupported the ratio gate is skipped and
// recorded as such.
//
//   ./build/bench_stream_analytics [--json PATH] [--users N]

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analytics/stream_analytics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/shard_plan.h"
#include "core/streaming_collector.h"
#include "eval/hotspots.h"
#include "eval/range_queries.h"
#include "io/wire.h"
#include "test_support.h"

namespace trajldp {
namespace {

using region::RegionId;

// Resets the kernel's peak-RSS high-water mark for this process so the
// next ReadPeakRssBytes() reflects only the phase that follows.
bool ResetPeakRss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear) return false;
  clear << "5";
  clear.flush();
  return static_cast<bool>(clear);
}

size_t ReadPeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<size_t>(
                 std::atoll(line.c_str() + sizeof("VmHWM:") - 1)) *
             1024;
    }
  }
  // Fallback: getrusage's monotonic high-water mark (never resets, so
  // phase ratios from it are meaningless — callers check the reset).
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

struct EqualityResult {
  size_t shards = 0;
  bool hotspots_equal = false;
  bool prq_equal = false;
  bool topk_equal = false;
  double seconds = 0.0;

  bool all_equal() const {
    return hotspots_equal && prq_equal && topk_equal;
  }
};

int Run(size_t num_users, const std::string& json_path) {
  constexpr int kN = 2;
  constexpr double kEpsilon = 5.0;
  constexpr size_t kTrajectoryLen = 5;
  constexpr uint64_t kSeed = 20260729;

  // Same ~200-region world as bench_stream_ingest / bench_batch_e2e.
  auto db = bench::MakeLatticeDb(2000);
  if (!db.ok()) {
    std::cerr << db.status() << "\n";
    return 1;
  }
  const auto time = *model::TimeDomain::Create(10);
  core::NGramConfig config;
  config.n = kN;
  config.epsilon = kEpsilon;
  config.decomposition.grid_size = 5;
  config.decomposition.coarse_grids = {1};
  config.decomposition.base_interval_minutes = 1440;
  config.decomposition.merge.kappa = 1;
  config.reachability.speed_kmh = 8.0;
  config.reachability.reference_gap_minutes = 30;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  if (!mech.ok()) {
    std::cerr << mech.status() << "\n";
    return 1;
  }
  const size_t num_regions = mech->decomposition().num_regions();
  const size_t hw_threads = ThreadPool::DefaultThreadCount();
  std::cout << "world: " << num_regions << " regions, " << num_users
            << " users, n=" << kN << ", epsilon=" << kEpsilon
            << ", L=" << kTrajectoryLen << ", hw threads: " << hw_threads
            << "\n";

  std::vector<region::RegionTrajectory> users(num_users);
  {
    Rng rng(4242);
    for (auto& tau : users) {
      for (size_t i = 0; i < kTrajectoryLen; ++i) {
        tau.push_back(static_cast<RegionId>(rng.UniformUint64(num_regions)));
      }
    }
  }

  // Device side: the ε-LDP wire reports.
  io::ReportBatch reports;
  {
    core::BatchReleaseEngine engine(&mech->perturber(),
                                    core::BatchReleaseEngine::Config{0});
    auto perturbed = engine.ReleaseAll(users, kSeed);
    if (!perturbed.ok()) {
      std::cerr << "device perturb: " << perturbed.status() << "\n";
      return 1;
    }
    reports = core::MakeWireReports(users, std::move(*perturbed),
                                    mech->perturber());
  }

  // Synthetic real POI trajectories (deterministic per user id) — the
  // pairing side of the PRQ curves.
  std::vector<model::Trajectory> real_by_user(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    for (size_t i = 0; i < kTrajectoryLen; ++i) {
      real_by_user[u].Append(
          static_cast<model::PoiId>((u * 7 + i * 3) % db->size()),
          static_cast<model::Timestep>((u + i * 11) %
                                       static_cast<size_t>(
                                           time.num_timesteps())));
    }
  }

  // The bundle configuration shared by every phase.
  analytics::StreamAnalyticsConfig bundle_config;
  bundle_config.hotspots.emplace();
  bundle_config.hotspots->entity = eval::HotspotSpec::Entity::kSpatialGrid;
  bundle_config.hotspots->grid_size = 4;
  bundle_config.hotspots->eta =
      std::max<int>(2, static_cast<int>(num_users / 100));
  bundle_config.prq.push_back(
      {eval::PrqDimension::kSpace, {0.0, 1.0, 4.0, 16.0, 1e9}});
  bundle_config.top_k.emplace();
  bundle_config.top_k->window_minutes = 120;
  bundle_config.top_k->k = 10;
  bundle_config.real_lookup = [&real_by_user](uint64_t id) {
    return id < real_by_user.size() ? &real_by_user[id] : nullptr;
  };

  // --- Batch reference: materialized releases + batch eval. ----------
  model::TrajectorySet released_set, real_set;
  {
    core::BatchReleaseEngine engine(&*mech,
                                    core::BatchReleaseEngine::Config{0});
    auto reference = engine.ReleaseAllFull(users, kSeed);
    if (!reference.ok()) {
      std::cerr << "batch engine: " << reference.status() << "\n";
      return 1;
    }
    for (size_t u = 0; u < num_users; ++u) {
      released_set.push_back(std::move((*reference)[u].trajectory));
      real_set.push_back(real_by_user[u]);
    }
  }
  auto batch_hotspots =
      eval::FindHotspots(*db, time, released_set, *bundle_config.hotspots);
  if (!batch_hotspots.ok()) {
    std::cerr << "batch hotspots: " << batch_hotspots.status() << "\n";
    return 1;
  }
  auto batch_curve = eval::PrqCurve(*db, time, real_set, released_set,
                                    bundle_config.prq[0].dimension,
                                    bundle_config.prq[0].deltas);
  if (!batch_curve.ok()) {
    std::cerr << "batch PRQ: " << batch_curve.status() << "\n";
    return 1;
  }
  auto batch_topk_acc =
      analytics::WindowedTopK::Create(&*db, time, *bundle_config.top_k);
  if (!batch_topk_acc.ok()) {
    std::cerr << "batch top-k: " << batch_topk_acc.status() << "\n";
    return 1;
  }
  for (const auto& traj : released_set) batch_topk_acc->Add(traj);
  const auto batch_topk = batch_topk_acc->Finalize();
  std::cout << "batch eval: " << batch_hotspots->size() << " hotspots (eta "
            << bundle_config.hotspots->eta << ")\n";

  // Runs one K-shard streaming pass. `with_analytics` toggles the
  // analytics fan-out; when off the sink only counts (the ingest-only
  // memory baseline). Returns the merged bundle when analytics ran.
  auto run_stream =
      [&](size_t num_shards, bool with_analytics, double* seconds)
      -> StatusOr<std::vector<analytics::StreamAnalytics>> {
    const core::ShardPlan plan{num_shards};
    auto sharded = core::PartitionByShard(plan, io::ReportBatch(reports));
    std::vector<analytics::StreamAnalytics> bundles;
    if (with_analytics) {
      for (size_t s = 0; s < num_shards; ++s) {
        TRAJLDP_ASSIGN_OR_RETURN(
            auto bundle,
            analytics::StreamAnalytics::Create(&*db, time, bundle_config));
        bundles.push_back(std::move(bundle));
      }
    }
    mech->domain().ClearCache();
    Stopwatch watch;
    for (size_t s = 0; s < num_shards; ++s) {
      core::StreamingCollector::Config collector_config;
      collector_config.num_threads = std::max<size_t>(1, hw_threads);
      collector_config.queue_capacity = 8;
      core::StreamingCollector::Sink sink;
      if (with_analytics) {
        analytics::StreamAnalytics& bundle = bundles[s];
        sink = [&bundle](core::UserRelease release) {
          bundle.Consume(release);
        };
      } else {
        sink = [](core::UserRelease) {};
      }
      core::StreamingCollector collector(&*mech, kSeed, std::move(sink),
                                         collector_config);
      for (size_t begin = 0; begin < sharded[s].size(); begin += 256) {
        const size_t end = std::min(begin + 256, sharded[s].size());
        TRAJLDP_RETURN_NOT_OK(collector.Push(io::ReportBatch(
            sharded[s].begin() + begin, sharded[s].begin() + end)));
      }
      TRAJLDP_RETURN_NOT_OK(collector.Finish());
      if (with_analytics) {
        TRAJLDP_RETURN_NOT_OK(bundles[s].status());
      }
    }
    *seconds = watch.ElapsedSeconds();
    for (size_t s = 1; s < bundles.size(); ++s) {
      TRAJLDP_RETURN_NOT_OK(bundles[0].Merge(bundles[s]));
    }
    return bundles;
  };

  // --- Memory phases (K = 1): ingest-only, then ingest + analytics. --
  const bool peak_reset_supported = ResetPeakRss();
  double ingest_seconds = 0.0;
  {
    auto result = run_stream(1, /*with_analytics=*/false, &ingest_seconds);
    if (!result.ok()) {
      std::cerr << "ingest-only: " << result.status() << "\n";
      return 1;
    }
  }
  const size_t ingest_peak_bytes = ReadPeakRssBytes();

  if (peak_reset_supported) ResetPeakRss();
  double analytics_seconds = 0.0;
  size_t aggregate_bytes = 0;
  {
    auto result = run_stream(1, /*with_analytics=*/true, &analytics_seconds);
    if (!result.ok()) {
      std::cerr << "ingest+analytics: " << result.status() << "\n";
      return 1;
    }
    aggregate_bytes = (*result)[0].ApproxMemoryBytes();
  }
  const size_t analytics_peak_bytes = ReadPeakRssBytes();
  const double peak_ratio = static_cast<double>(analytics_peak_bytes) /
                            static_cast<double>(ingest_peak_bytes);
  const bool memory_ok = !peak_reset_supported || peak_ratio < 2.0;
  std::printf(
      "peak RSS: ingest-only %.1f MiB, ingest+analytics %.1f MiB "
      "(ratio %.3f%s), aggregates %.1f KiB\n",
      ingest_peak_bytes / 1048576.0, analytics_peak_bytes / 1048576.0,
      peak_ratio, peak_reset_supported ? "" : ", reset unsupported",
      aggregate_bytes / 1024.0);
  std::printf("throughput: ingest-only %.0f users/s, with analytics %.0f "
              "users/s\n",
              num_users / ingest_seconds, num_users / analytics_seconds);

  // --- Equality gate: K ∈ {1, 2, 4} merged bundles vs batch eval. ----
  std::vector<EqualityResult> equality;
  bool all_equal = true;
  for (const size_t num_shards : {1u, 2u, 4u}) {
    EqualityResult result;
    result.shards = num_shards;
    auto bundles = run_stream(num_shards, /*with_analytics=*/true,
                              &result.seconds);
    if (!bundles.ok()) {
      std::cerr << "stream(shards=" << num_shards << "): "
                << bundles.status() << "\n";
      return 1;
    }
    const analytics::StreamAnalytics& merged = (*bundles)[0];
    result.hotspots_equal =
        merged.hotspots()->Finalize() == *batch_hotspots;
    auto stream_curve = merged.prq()[0].Curve();
    if (!stream_curve.ok()) {
      std::cerr << "stream PRQ: " << stream_curve.status() << "\n";
      return 1;
    }
    result.prq_equal = *stream_curve == *batch_curve;  // exact, by design
    result.topk_equal = merged.top_k()->Finalize() == batch_topk;
    all_equal = all_equal && result.all_equal();
    std::printf(
        "shards %zu : hotspots %s  prq %s  topk %s  (%.3f s)\n",
        num_shards, result.hotspots_equal ? "equal" : "MISMATCH",
        result.prq_equal ? "equal" : "MISMATCH",
        result.topk_equal ? "equal" : "MISMATCH", result.seconds);
    equality.push_back(result);
  }

  std::cout << "analytics equal to batch eval across shard counts: "
            << (all_equal ? "yes" : "NO — EQUIVALENCE BUG") << "\n"
            << "peak-memory gate (< 2x ingest-only): "
            << (memory_ok ? "ok" : "EXCEEDED") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << " for writing\n";
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"stream_analytics\",\n"
        << "  \"num_users\": " << num_users << ",\n"
        << "  \"num_regions\": " << num_regions << ",\n"
        << "  \"hotspot_eta\": " << bundle_config.hotspots->eta << ",\n"
        << "  \"batch_hotspots\": " << batch_hotspots->size() << ",\n"
        << "  \"analytics_equal_to_batch_eval\": "
        << (all_equal ? "true" : "false") << ",\n"
        << "  \"analytics_peak_bytes\": " << analytics_peak_bytes << ",\n"
        << "  \"ingest_peak_bytes\": " << ingest_peak_bytes << ",\n"
        << "  \"analytics_peak_ratio\": " << peak_ratio << ",\n"
        << "  \"peak_reset_supported\": "
        << (peak_reset_supported ? "true" : "false") << ",\n"
        << "  \"aggregate_bytes\": " << aggregate_bytes << ",\n"
        << "  \"ingest_users_per_sec\": " << num_users / ingest_seconds
        << ",\n"
        << "  \"analytics_users_per_sec\": "
        << num_users / analytics_seconds << ",\n"
        << "  \"runs\": [\n";
    for (size_t i = 0; i < equality.size(); ++i) {
      const EqualityResult& run = equality[i];
      out << "    {\"shards\": " << run.shards << ", \"hotspots_equal\": "
          << (run.hotspots_equal ? "true" : "false") << ", \"prq_equal\": "
          << (run.prq_equal ? "true" : "false") << ", \"topk_equal\": "
          << (run.topk_equal ? "true" : "false") << ", \"seconds\": "
          << run.seconds << "}" << (i + 1 < equality.size() ? "," : "")
          << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  return (all_equal && memory_ok) ? 0 : 2;
}

}  // namespace
}  // namespace trajldp

int main(int argc, char** argv) {
  // Env default first; an explicit --users flag wins over it.
  size_t num_users = 5000;
  if (const char* env = std::getenv("TRAJLDP_BENCH_ANALYTICS_USERS")) {
    num_users = static_cast<size_t>(std::atoll(env));
  }
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      num_users = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::cerr << "usage: " << argv[0] << " [--json PATH] [--users N]\n";
      return 1;
    }
  }
  return trajldp::Run(num_users, json_path);
}
