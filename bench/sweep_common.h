#ifndef TRAJLDP_BENCH_SWEEP_COMMON_H_
#define TRAJLDP_BENCH_SWEEP_COMMON_H_

// Shared sweep driver for Figures 8 and 9: the same parameter sweeps
// (trajectory length, privacy budget, |P|, travel speed, n-gram length)
// feed both the normalized-error figure (8) and the runtime figure (9);
// the two bench binaries only differ in which column they print.

#include <cmath>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "eval/normalized_error.h"

namespace trajldp::bench {

/// What a single (dataset, method, config) cell produced.
struct SweepCell {
  double ne = std::nan("");                // combined NE per point
  double seconds_per_traj = std::nan("");  // mean mechanism time
};

inline StatusOr<SweepCell> RunCell(const eval::Dataset& dataset,
                                   eval::Method method,
                                   const eval::ExperimentConfig& config) {
  auto result = eval::RunMethod(dataset, method, config);
  if (!result.ok()) return result.status();
  auto ne = eval::ComputeNormalizedError(dataset.db, dataset.time,
                                         result->real, result->perturbed);
  if (!ne.ok()) return ne.status();
  SweepCell cell;
  // Combined per-point error: the quadrature of the three dimensions,
  // matching the d(·,·) definition the figures' y-axis aggregates.
  cell.ne = std::sqrt(ne->time_hours * ne->time_hours +
                      ne->category * ne->category +
                      ne->space_km * ne->space_km);
  cell.seconds_per_traj = result->MeanSecondsPerTrajectory();
  return cell;
}

/// Column formatter: picks NE or runtime.
inline std::string FormatCell(const SweepCell& cell, bool report_ne) {
  const double v = report_ne ? cell.ne : cell.seconds_per_traj;
  if (std::isnan(v)) return "-";
  return TablePrinter::Fmt(v, report_ne ? 2 : 4);
}

/// Number of trajectories per sweep cell (before env scaling).
inline constexpr size_t kSweepTrajectories = 100;

/// Runs one sweep over `values`, printing a row per method. `configure`
/// mutates the ExperimentConfig (and may return a replacement dataset
/// pointer, for the |P| sweep).
template <typename Value, typename Configure>
void RunSweep(const std::string& title, const std::string& axis,
              const std::vector<Value>& values,
              const std::vector<eval::Method>& methods,
              const std::vector<const eval::Dataset*>& datasets,
              bool report_ne, Configure&& configure) {
  for (const eval::Dataset* dataset : datasets) {
    std::cout << "\n--- " << title << " (" << dataset->name << ") ---\n";
    std::vector<std::string> headers = {"Method"};
    for (const Value& v : values) {
      std::ostringstream os;
      os << axis << "=" << v;
      headers.push_back(os.str());
    }
    TablePrinter table(headers);
    for (eval::Method method : methods) {
      std::vector<std::string> row = {eval::MethodName(method)};
      for (const Value& v : values) {
        eval::ExperimentConfig config;
        config.max_trajectories = eval::ScaledCount(kSweepTrajectories);
        const eval::Dataset* effective =
            configure(*dataset, method, v, &config);
        if (effective == nullptr) {
          row.push_back("-");
          continue;
        }
        auto cell = RunCell(*effective, method, config);
        row.push_back(cell.ok() ? FormatCell(*cell, report_ne) : "err");
      }
      table.AddRow(std::move(row));
      std::cout << "  finished " << eval::MethodName(method) << "\n";
    }
    std::cout << "\n";
    table.Print(std::cout);
  }
}

/// Runs every Figure 8/9 sweep. `report_ne` = true prints normalized
/// error (Figure 8), false prints mean per-trajectory runtime (Figure 9).
inline int RunFigureSweeps(bool report_ne) {
  const size_t base_trajectories = eval::ScaledCount(kSweepTrajectories);

  // Base datasets for the length / budget / speed sweeps. The length
  // sweep filters by exact length, so generate a larger pool.
  auto tf = eval::MakeTaxiFoursquareDataset(
      ScaledOptions(kDefaultPois, kSweepTrajectories * 8));
  auto sg = eval::MakeSafegraphDataset(
      ScaledOptions(kDefaultPois, kSweepTrajectories * 8, 8));
  if (!tf.ok() || !sg.ok()) {
    std::cerr << "dataset construction failed\n";
    return 1;
  }
  const std::vector<const eval::Dataset*> urban = {&*tf, &*sg};
  const std::vector<eval::Method> all = eval::AllMethods();

  // (a, e) Trajectory length.
  RunSweep("Trajectory length sweep", "|tau|",
           std::vector<size_t>{4, 6, 8}, all, urban, report_ne,
           [&](const eval::Dataset& d, eval::Method, size_t len,
               eval::ExperimentConfig* config) -> const eval::Dataset* {
             config->exact_length = len;
             return &d;
           });

  // (b, f) Privacy budget.
  RunSweep("Privacy budget sweep", "eps",
           std::vector<double>{0.01, 0.1, 1.0, 10.0}, all, urban, report_ne,
           [&](const eval::Dataset& d, eval::Method, double eps,
               eval::ExperimentConfig* config) -> const eval::Dataset* {
             config->epsilon = eps;
             return &d;
           });

  // (c, g) Size of the POI set. The paper omits PhysDist and NGramNoH at
  // |P| = 8000 "owing to their high runtime" — mirrored here.
  {
    std::vector<std::unique_ptr<eval::Dataset>> tf_sized, sg_sized;
    std::vector<size_t> sizes = {2000, 4000, 6000, 8000};
    for (size_t p : sizes) {
      auto a = eval::MakeTaxiFoursquareDataset(
          ScaledOptions(p, kSweepTrajectories * 2));
      auto b = eval::MakeSafegraphDataset(
          ScaledOptions(p, kSweepTrajectories * 2, 8));
      if (!a.ok() || !b.ok()) {
        std::cerr << "sized dataset failed\n";
        return 1;
      }
      tf_sized.push_back(std::make_unique<eval::Dataset>(std::move(*a)));
      sg_sized.push_back(std::make_unique<eval::Dataset>(std::move(*b)));
    }
    auto lookup = [&](const eval::Dataset& base,
                      size_t p) -> const eval::Dataset* {
      const auto& pool = (&base == &*tf) ? tf_sized : sg_sized;
      for (size_t i = 0; i < sizes.size(); ++i) {
        if (sizes[i] == p) return pool[i].get();
      }
      return nullptr;
    };
    RunSweep("POI set size sweep", "|P|", sizes, all, urban, report_ne,
             [&](const eval::Dataset& d, eval::Method method, size_t p,
                 eval::ExperimentConfig*) -> const eval::Dataset* {
               if (p >= 8000 && (method == eval::Method::kPhysDist ||
                                 method == eval::Method::kNGramNoH)) {
                 return nullptr;  // omitted, as in the paper
               }
               return lookup(d, p);
             });
  }

  // (d, h) Assumed travel speed, including the unconstrained setting.
  RunSweep("Travel speed sweep", "km/h",
           std::vector<double>{4.0, 8.0, 12.0, 16.0,
                               std::numeric_limits<double>::infinity()},
           all, urban, report_ne,
           [&](const eval::Dataset& d, eval::Method, double speed,
               eval::ExperimentConfig* config) -> const eval::Dataset* {
             config->speed_override_kmh = speed;
             return &d;
           });

  // (i) n-gram length on the campus data, n-gram methods only.
  auto campus =
      eval::MakeCampusDataset(ScaledOptions(262, kSweepTrajectories * 4, 9));
  if (!campus.ok()) {
    std::cerr << campus.status() << "\n";
    return 1;
  }
  RunSweep("n-gram length sweep", "n", std::vector<int>{1, 2, 3},
           {eval::Method::kPhysDist, eval::Method::kNGramNoH,
            eval::Method::kNGram},
           {&*campus}, report_ne,
           [&](const eval::Dataset& d, eval::Method, int n,
               eval::ExperimentConfig* config) -> const eval::Dataset* {
             config->n = n;
             return &d;
           });

  (void)base_trajectories;
  return 0;
}

}  // namespace trajldp::bench

#endif  // TRAJLDP_BENCH_SWEEP_COMMON_H_
