// Ablation C: the global solution and its would-be rescuers (§5.1).
// Demonstrates (1) the combinatorial explosion of |S| that makes the
// global EM infeasible, and (2) why the subsampled EM and permute-and-
// flip do not fix it: the subsampled EM almost never samples a
// low-distance trajectory, and PF's acceptance probability is tiny on
// skewed distance distributions.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/global_mechanism.h"
#include "ldp/permute_and_flip.h"
#include "test_support.h"

using namespace trajldp;

int main() {
  bench::PrintHeader(
      "Ablation C: the global mechanism and EM variants",
      "§5.1's infeasibility argument; subsampled EM [34]; permute-and-flip "
      "[38]");

  // ---- Part 1: |S| explosion. ----
  std::cout << "--- |S| as the domain grows (g_t = 60, speed 8 km/h) ---\n";
  TablePrinter growth({"|P|", "|tau|", "|S|", "enumerable?"});
  const auto time = *model::TimeDomain::Create(60);
  for (size_t num_pois : {4u, 8u, 16u, 32u}) {
    auto db = bench::MakeLatticeDb(num_pois);
    if (!db.ok()) {
      std::cerr << db.status() << "\n";
      return 1;
    }
    for (size_t len : {2u, 3u, 4u}) {
      core::GlobalMechanism::Config config;
      config.epsilon = 5.0;
      config.reachability.speed_kmh = 8.0;
      config.max_candidates = 2000000;
      auto mech = core::GlobalMechanism::Create(&*db, time, config);
      if (!mech.ok()) continue;
      const double count = mech->CountCandidates(len);
      auto enumerated = mech->EnumerateCandidates(len);
      growth.AddRow({std::to_string(num_pois), std::to_string(len),
                     TablePrinter::Fmt(count, 0),
                     enumerated.ok() ? "yes" : "NO (cap exceeded)"});
    }
  }
  growth.Print(std::cout);
  std::cout << "\nAt the paper's scale (|P| = 1000, |tau| = 5, g_t = 15) "
               "|S| ~ 9.78e19 — hence the n-gram mechanism.\n";

  // ---- Part 2: utility of EM vs variants on an enumerable world. ----
  // Length-2 trajectories on 16 POIs keep |S| ≈ 7 × 10⁴, comfortably
  // enumerable; anything bigger trips the cap (see part 1).
  std::cout << "\n--- Output quality on a small world (mean d_tau over 40 "
               "runs) ---\n";
  auto db = bench::MakeLatticeDb(16);
  if (!db.ok()) {
    std::cerr << db.status() << "\n";
    return 1;
  }
  const auto input = [&] {
    model::Trajectory traj;
    traj.Append(0, 2);
    traj.Append(5, 9);
    return traj;
  }();

  TablePrinter quality({"Sampler", "mean d_tau", "mean ms/run"});
  for (auto [sampler, name] :
       {std::pair{core::GlobalMechanism::Sampler::kExponential, "EM"},
        std::pair{core::GlobalMechanism::Sampler::kPermuteAndFlip,
                  "Permute-and-Flip"},
        std::pair{core::GlobalMechanism::Sampler::kSubsampledEm,
                  "Subsampled EM (m=200)"}}) {
    core::GlobalMechanism::Config config;
    config.epsilon = 5.0;
    config.reachability.speed_kmh = 8.0;
    config.sampler = sampler;
    config.subsample_size = 200;
    config.quality_sensitivity = 1.0;  // paper calibration (DESIGN.md)
    auto mech = core::GlobalMechanism::Create(&*db, time, config);
    if (!mech.ok()) {
      std::cerr << mech.status() << "\n";
      return 1;
    }
    double total = 0.0;
    Stopwatch watch;
    const int runs = 40;
    for (int seed = 0; seed < runs; ++seed) {
      Rng rng(seed);
      auto out = mech->Perturb(input, rng);
      if (!out.ok()) {
        std::cerr << name << ": " << out.status() << "\n";
        return 1;
      }
      total += mech->distance().BetweenTrajectories(input, *out);
    }
    quality.AddRow({name, TablePrinter::Fmt(total / runs),
                    TablePrinter::Fmt(watch.ElapsedMillis() / runs, 2)});
  }
  quality.Print(std::cout);

  // ---- Part 3: PF acceptance probability on skewed qualities. ----
  std::cout << "\n--- Permute-and-flip Bernoulli trials per draw ---\n";
  TablePrinter flips({"domain size", "mean flips", "of domain (%)"});
  Rng rng(5);
  for (size_t domain : {100u, 1000u, 10000u}) {
    // Skewed qualities: one good output, the rest far away — the shape
    // §5.1 says trajectory distances have.
    std::vector<double> qualities(domain, -50.0);
    qualities[0] = 0.0;
    auto pf = ldp::PermuteAndFlip::Create(5.0, 50.0);
    if (!pf.ok()) return 1;
    double total_flips = 0.0;
    const int runs = 30;
    for (int i = 0; i < runs; ++i) {
      size_t count = 0;
      auto pick = pf->Sample(qualities, rng, &count);
      if (!pick.ok()) return 1;
      total_flips += static_cast<double>(count);
    }
    flips.AddRow({std::to_string(domain),
                  TablePrinter::Fmt(total_flips / runs, 1),
                  TablePrinter::Fmt(100.0 * total_flips / runs / domain, 1)});
  }
  flips.Print(std::cout);

  bench::PrintShapeCheck(
      "Expected: |S| explodes combinatorially (the cap trips well before\n"
      "paper-scale domains); the subsampled EM's mean d_tau is far worse\n"
      "than the full EM's because low-distance trajectories are almost\n"
      "never in the sample (§5.1); and PF needs to inspect a large\n"
      "fraction of the domain per draw on skewed qualities, erasing its\n"
      "efficiency advantage.");
  return 0;
}
