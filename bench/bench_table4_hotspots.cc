// Regenerates Table 4: average hotspot distance (AHD, hours) and average
// count difference (ACD) between real and perturbed hotspot sets for all
// methods on all three datasets, plus the per-granularity detail of
// §6.3.2 (three spatial and three category granularities).

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "eval/hotspots.h"

using namespace trajldp;

namespace {

// The paper's granularities and thresholds (§6.3.2): POI-level and 4×4 /
// 2×2 spatial grids with η = {20, 20, 50}; category levels {1, 2, 3} with
// η = {50, 30, 20}. Thresholds scale with the workload size.
std::vector<eval::HotspotSpec> PaperSpecs(size_t num_trajectories) {
  const double scale =
      static_cast<double>(num_trajectories) / 5000.0;  // paper-sized |T|
  auto eta = [&](int paper_eta) {
    return std::max(3, static_cast<int>(paper_eta * scale));
  };
  std::vector<eval::HotspotSpec> specs;
  {
    eval::HotspotSpec poi;
    poi.entity = eval::HotspotSpec::Entity::kPoi;
    poi.eta = eta(20);
    specs.push_back(poi);
  }
  for (uint32_t grid : {4u, 2u}) {
    eval::HotspotSpec spatial;
    spatial.entity = eval::HotspotSpec::Entity::kSpatialGrid;
    spatial.grid_size = grid;
    spatial.eta = grid == 4 ? eta(20) : eta(50);
    specs.push_back(spatial);
  }
  for (int level : {1, 2, 3}) {
    eval::HotspotSpec category;
    category.entity = eval::HotspotSpec::Entity::kCategoryLevel;
    category.category_level = level;
    category.eta = level == 1 ? eta(50) : (level == 2 ? eta(30) : eta(20));
    specs.push_back(category);
  }
  return specs;
}

}  // namespace

int main() {
  bench::PrintHeader("Table 4: AHD and ACD for default trajectory sets",
                     "paper Table 4, §7.3");

  std::vector<eval::Dataset> datasets;
  {
    auto tf = eval::MakeTaxiFoursquareDataset(bench::ScaledOptions(
        bench::kDefaultPois, bench::kDefaultTrajectories * 2));
    auto sg = eval::MakeSafegraphDataset(bench::ScaledOptions(
        bench::kDefaultPois, bench::kDefaultTrajectories * 2, 8));
    auto cp = eval::MakeCampusDataset(bench::ScaledOptions(
        262, bench::kDefaultTrajectories * 4, 9));
    for (auto* d : {&tf, &sg, &cp}) {
      if (!d->ok()) {
        std::cerr << d->status() << "\n";
        return 1;
      }
      datasets.push_back(std::move(**d));
    }
  }

  eval::ExperimentConfig config;
  config.epsilon = 5.0;

  TablePrinter table({"Method", "TF AHD", "TF ACD", "SG AHD", "SG ACD",
                      "CP AHD", "CP ACD"});
  for (eval::Method method : eval::AllMethods()) {
    std::vector<std::string> row = {eval::MethodName(method)};
    for (const eval::Dataset& dataset : datasets) {
      auto result = eval::RunMethod(dataset, method, config);
      if (!result.ok()) {
        std::cerr << eval::MethodName(method) << ": " << result.status()
                  << "\n";
        return 1;
      }
      // Average AHD/ACD over all six granularities, matching the paper's
      // single summary number per dataset.
      double ahd_sum = 0.0, acd_sum = 0.0;
      int counted = 0;
      for (const auto& spec :
           PaperSpecs(dataset.trajectories.size())) {
        auto real_h = eval::FindHotspots(dataset.db, dataset.time,
                                         result->real, spec);
        auto pert_h = eval::FindHotspots(dataset.db, dataset.time,
                                         result->perturbed, spec);
        if (!real_h.ok() || !pert_h.ok()) continue;
        const auto cmp = eval::CompareHotspots(*real_h, *pert_h);
        if (cmp.matched == 0) continue;
        ahd_sum += cmp.ahd_hours;
        acd_sum += cmp.acd;
        ++counted;
      }
      row.push_back(counted ? TablePrinter::Fmt(ahd_sum / counted) : "-");
      row.push_back(counted ? TablePrinter::Fmt(acd_sum / counted) : "-");
    }
    table.AddRow(std::move(row));
    std::cout << "finished " << eval::MethodName(method) << "\n";
  }
  std::cout << "\n";
  table.Print(std::cout);

  bench::PrintShapeCheck(
      "Paper Table 4: NGram preserves the temporal location of hotspots\n"
      "best (lowest AHD on every dataset: 1.49/2.01/2.03 vs PhysDist worst\n"
      "at 2.22/3.34/4.38), but its hotspots are 'flatter', giving it a\n"
      "comparatively poor ACD. Expect: NGram lowest AHD, PhysDist highest\n"
      "AHD, and NGram NOT best on ACD.");
  return 0;
}
