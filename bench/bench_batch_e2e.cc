// End-to-end batched pipeline benchmark (ISSUE 2 + ISSUE 4 acceptance
// criteria):
// on a ~200-region / n = 2 / multi-user workload at fixed ε, run the full
// collector pipeline — perturb → R_mbr candidates → optimal region-level
// reconstruction → POI-level resampling — four ways and compare:
//
//  1. seed path   — faithful replica of the pre-optimisation per-user
//     loop: uncached perturbation (O(R) distance + exp() rows per draw),
//     node-error tables filled with per-pair haversine + category walks,
//     per-call solver allocations (see seed_replica.h);
//  2. sequential  — today's per-user loop (cached rows + float-table
//     gather), no workspaces: the engine's documented replay recipe,
//     under the legacy REJECTION PoiPolicy;
//  3. engine, 1 thread / all hardware threads —
//     BatchReleaseEngine::ReleaseAllFull with per-worker
//     PipelineWorkspaces, rejection policy;
//  4. guided      — the same pipeline under PoiPolicy::kGuided
//     (reachability-table lookups + the exact increasing-time proposal),
//     sequentially and through the engine at 1/all threads.
//
// Gates (exit non-zero on violation, so CI fails loudly):
//  * rejection engine output bit-identical to (2) at every thread count
//    — the legacy policy stays draw-for-draw the paper loop;
//  * guided engine output bit-identical to the sequential guided loop
//    at every thread count;
//  * end-to-end engine speedup vs the seed loop >= 4x;
//  * POI-stage speedup, guided vs rejection (per-stage split), >= 2x;
//  * threads × cache-mode sweep (ISSUE 8): every {1, 2, hw} × {shared,
//    sharded, replica} engine run bit-identical to the sequential
//    reference (throughput keys are informational on 1-CPU hosts).
//
// Engine legs additionally record hardware counters (IPC, LLC misses
// per n-gram) via bench/hw_counters.h; hosts without perf_event access
// report hw_counters_available = false and the bench still passes.
//
//   ./build/bench_batch_e2e [--json PATH] [--users N] [--hw-probe]

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "hw_counters.h"
#include "model/reachability.h"
#include "region/region_index.h"
#include "seed_replica.h"
#include "test_support.h"

namespace trajldp {
namespace {

using region::RegionId;

bool Identical(const std::vector<core::FullRelease>& a,
               const std::vector<core::FullRelease>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].regions != b[i].regions ||
        !(a[i].trajectory == b[i].trajectory) ||
        a[i].poi_attempts != b[i].poi_attempts ||
        a[i].smoothed != b[i].smoothed) {
      return false;
    }
  }
  return true;
}

int Run(size_t num_users, const std::string& json_path) {
  constexpr int kN = 2;
  constexpr double kEpsilon = 5.0;
  constexpr size_t kTrajectoryLen = 5;
  constexpr uint64_t kSeed = 20260729;

  // Same ~200-region world as bench_batch_release: 2000 always-open
  // lattice POIs, 5×5 spatial grid, one whole-day interval → 225
  // (cell, interval, category) regions.
  auto db = bench::MakeLatticeDb(2000);
  if (!db.ok()) {
    std::cerr << db.status() << "\n";
    return 1;
  }
  const auto time = *model::TimeDomain::Create(10);
  core::NGramConfig config;
  config.n = kN;
  config.epsilon = kEpsilon;
  config.decomposition.grid_size = 5;
  config.decomposition.coarse_grids = {1};
  config.decomposition.base_interval_minutes = 1440;
  config.decomposition.merge.kappa = 1;
  // Same collector policy as bench_batch_release: 4 km reachability →
  // per-cell cliques, the regime the paper's city decompositions sit in.
  config.reachability.speed_kmh = 8.0;
  config.reachability.reference_gap_minutes = 30;
  // One world serves both POI policies: build the reachability table so
  // the guided-vs-rejection comparison is policy-only (the table never
  // changes a rejection accept/reject bit — see core/reachability.h).
  config.precompute_poi_reachability = true;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  if (!mech.ok()) {
    std::cerr << mech.status() << "\n";
    return 1;
  }

  const auto& decomp = mech->decomposition();
  const auto& graph = mech->graph();
  const auto& distance = mech->distance();
  const size_t num_regions = decomp.num_regions();
  std::cout << "world: " << num_regions << " regions, " << graph.num_edges()
            << " edges, " << num_users << " users, n=" << kN
            << ", epsilon=" << kEpsilon << ", L=" << kTrajectoryLen << "\n";

  std::vector<region::RegionTrajectory> users(num_users);
  {
    Rng rng(4242);
    for (auto& tau : users) {
      for (size_t i = 0; i < kTrajectoryLen; ++i) {
        tau.push_back(static_cast<RegionId>(rng.UniformUint64(num_regions)));
      }
    }
  }
  const Rng root(kSeed);

  // --- 1. Seed per-user e2e path (sequential). ----------------------
  const model::Reachability seed_reach(&*db, time, config.reachability);
  const bench::SeedPoiReconstructor seed_poi(&decomp, &seed_reach,
                                             config.poi.gamma);
  double seed_seconds = 0.0;
  {
    Stopwatch watch;
    for (size_t i = 0; i < users.size(); ++i) {
      Rng user_rng = root.Substream(i);
      auto z = bench::SeedPerturb(graph, distance, users[i], kN, kEpsilon,
                                  user_rng);
      if (!z.ok()) {
        std::cerr << "seed perturb: " << z.status() << "\n";
        return 1;
      }
      std::vector<RegionId> observed;
      for (const core::PerturbedNgram& gram : *z) {
        observed.insert(observed.end(), gram.regions.begin(),
                        gram.regions.end());
      }
      std::sort(observed.begin(), observed.end());
      observed.erase(std::unique(observed.begin(), observed.end()),
                     observed.end());
      auto problem = bench::SeedBuildProblem(
          distance, users[i].size(), *z,
          region::MbrCandidateRegions(decomp, observed));
      auto regions = bench::SeedViterbi(graph, problem);
      if (!regions.ok() &&
          regions.status().code() == StatusCode::kFailedPrecondition) {
        std::vector<RegionId> all(num_regions);
        for (size_t r = 0; r < all.size(); ++r) {
          all[r] = static_cast<RegionId>(r);
        }
        auto full = bench::SeedBuildProblem(distance, users[i].size(), *z,
                                            std::move(all));
        regions = bench::SeedViterbi(graph, full);
      }
      if (!regions.ok()) {
        std::cerr << "seed reconstruct: " << regions.status() << "\n";
        return 1;
      }
      auto poi = seed_poi.Reconstruct(*regions, user_rng);
      if (!poi.ok()) {
        std::cerr << "seed poi: " << poi.status() << "\n";
        return 1;
      }
    }
    seed_seconds = watch.ElapsedSeconds();
  }

  // --- 2. Today's sequential loop (reference output). ----------------
  std::vector<core::FullRelease> sequential;
  sequential.reserve(users.size());
  core::StageBreakdown stages;
  double sequential_seconds = 0.0;
  {
    mech->domain().ClearCache();
    Stopwatch watch;
    for (size_t i = 0; i < users.size(); ++i) {
      Rng user_rng = root.Substream(i);
      auto release =
          mech->ReleaseFromRegions(users[i], user_rng, nullptr, &stages);
      if (!release.ok()) {
        std::cerr << "sequential: " << release.status() << "\n";
        return 1;
      }
      sequential.push_back(std::move(*release));
    }
    sequential_seconds = watch.ElapsedSeconds();
  }

  // --- 3. Batched engine, 1 thread and all hardware threads. ---------
  // One hardware-counter measurement per engine leg: counters open
  // before the pool spawns (inherit covers the workers), baseline just
  // before the batch.
  struct HwStats {
    bool available = false;
    bool llc = false;
    bench::HwSample sample;
  };
  auto run_engine = [&](size_t threads, core::PoiPolicy policy,
                        std::optional<core::NgramDomain::CacheMode> mode,
                        double& seconds, HwStats* hw_out)
      -> StatusOr<std::vector<core::FullRelease>> {
    core::BatchReleaseEngine::Config engine_config;
    engine_config.num_threads = threads;
    engine_config.poi_policy = policy;
    engine_config.cache_mode = mode;
    bench::HwCounters hw;
    core::BatchReleaseEngine engine(&*mech, engine_config);
    mech->domain().ClearCache();
    hw.Start();
    Stopwatch watch;
    auto result = engine.ReleaseAllFull(users, kSeed);
    seconds = watch.ElapsedSeconds();
    if (hw_out != nullptr) {
      hw_out->available = hw.available();
      hw_out->llc = hw.llc_supported();
      hw_out->sample = hw.Delta();
    }
    return result;
  };
  // EM draws per user: L + n − 1 main + supplementary n-grams.
  const double num_ngrams =
      static_cast<double>(num_users) * (kTrajectoryLen + kN - 1);
  const auto llc_per_ngram = [&](const HwStats& hw) {
    return hw.available && hw.llc
               ? static_cast<double>(hw.sample.llc_misses) / num_ngrams
               : 0.0;
  };

  double engine1_seconds = 0.0;
  HwStats engine1_hw;
  auto engine1 = run_engine(1, core::PoiPolicy::kRejection, std::nullopt,
                            engine1_seconds, &engine1_hw);
  if (!engine1.ok()) {
    std::cerr << "engine(1): " << engine1.status() << "\n";
    return 1;
  }
  const size_t hw_threads = ThreadPool::DefaultThreadCount();
  double engine_hw_seconds = 0.0;
  auto engine_hw = run_engine(hw_threads, core::PoiPolicy::kRejection,
                              std::nullopt, engine_hw_seconds, nullptr);
  if (!engine_hw.ok()) {
    std::cerr << "engine(" << hw_threads << "): " << engine_hw.status()
              << "\n";
    return 1;
  }

  // --- 4. Guided policy: sequential stage split + engine runs. -------
  const core::CollectorPipeline guided_pipe =
      mech->pipeline(core::PoiPolicy::kGuided);
  std::vector<core::FullRelease> guided_sequential(users.size());
  core::StageBreakdown guided_stages;
  double guided_sequential_seconds = 0.0;
  {
    core::PipelineWorkspace ws;
    mech->domain().ClearCache();
    Stopwatch watch;
    for (size_t i = 0; i < users.size(); ++i) {
      Rng user_rng = root.Substream(i);
      Status released = guided_pipe.ReleaseInto(
          users[i], user_rng, ws, guided_sequential[i], &guided_stages);
      if (!released.ok()) {
        std::cerr << "guided sequential: " << released << "\n";
        return 1;
      }
    }
    guided_sequential_seconds = watch.ElapsedSeconds();
  }

  double guided1_seconds = 0.0;
  HwStats guided1_hw;
  auto guided1 = run_engine(1, core::PoiPolicy::kGuided, std::nullopt,
                            guided1_seconds, &guided1_hw);
  if (!guided1.ok()) {
    std::cerr << "guided engine(1): " << guided1.status() << "\n";
    return 1;
  }
  double guided_hw_seconds = 0.0;
  auto guided_hw = run_engine(hw_threads, core::PoiPolicy::kGuided,
                              std::nullopt, guided_hw_seconds, nullptr);
  if (!guided_hw.ok()) {
    std::cerr << "guided engine(" << hw_threads
              << "): " << guided_hw.status() << "\n";
    return 1;
  }

  // --- 5. Threads × cache-mode contention sweep (ISSUE 8). -----------
  // Every leg re-runs the rejection engine under an explicit cache mode
  // and must land bit-identical to the sequential reference; throughput
  // and counters quantify contention once a multi-core runner exists
  // (informational on a 1-CPU host, where t2 just oversubscribes).
  struct SweepLeg {
    size_t threads;
    const char* mode_name;
    double seconds;
    HwStats hw;
  };
  std::vector<size_t> sweep_threads = {1, 2};
  if (hw_threads != 1 && hw_threads != 2) sweep_threads.push_back(hw_threads);
  constexpr std::pair<const char*, core::NgramDomain::CacheMode> kSweepModes[] =
      {{"shared", core::NgramDomain::CacheMode::kShared},
       {"sharded", core::NgramDomain::CacheMode::kSharded},
       {"replica", core::NgramDomain::CacheMode::kPerThread}};
  std::vector<SweepLeg> sweep;
  bool cache_sweep_identical = true;
  for (size_t threads : sweep_threads) {
    for (const auto& [mode_name, mode] : kSweepModes) {
      SweepLeg leg{threads, mode_name, 0.0, {}};
      auto result = run_engine(threads, core::PoiPolicy::kRejection, mode,
                               leg.seconds, &leg.hw);
      if (!result.ok()) {
        std::cerr << "sweep engine(" << threads << ", " << mode_name
                  << "): " << result.status() << "\n";
        return 1;
      }
      if (!Identical(*result, sequential)) cache_sweep_identical = false;
      sweep.push_back(leg);
    }
  }
  // Leave the domain in its default mode for anyone embedding this TU.
  mech->domain().set_cache_mode(core::NgramDomain::CacheMode::kSharded);

  const bool identical =
      Identical(*engine1, sequential) && Identical(*engine_hw, sequential);
  const bool guided_identical = Identical(*guided1, guided_sequential) &&
                                Identical(*guided_hw, guided_sequential);
  const double speedup_vs_seed = seed_seconds / engine_hw_seconds;
  const double speedup_1t_vs_seed = seed_seconds / engine1_seconds;
  const double scaling = engine1_seconds / engine_hw_seconds;
  const double poi_stage_speedup =
      stages.poi_seconds / guided_stages.poi_seconds;
  const auto users_per_sec = [&](double seconds) {
    return static_cast<double>(num_users) / seconds;
  };

  std::cout << "seed e2e path:        " << seed_seconds << " s  ("
            << users_per_sec(seed_seconds) << " users/s)\n"
            << "cached sequential:    " << sequential_seconds << " s  ("
            << users_per_sec(sequential_seconds) << " users/s)\n"
            << "engine, 1 thread:     " << engine1_seconds << " s  ("
            << users_per_sec(engine1_seconds) << " users/s)\n"
            << "engine, " << hw_threads << " thread(s):  " << engine_hw_seconds
            << " s  (" << users_per_sec(engine_hw_seconds) << " users/s)\n"
            << "guided sequential:    " << guided_sequential_seconds
            << " s  (" << users_per_sec(guided_sequential_seconds)
            << " users/s)\n"
            << "guided engine, 1t:    " << guided1_seconds << " s  ("
            << users_per_sec(guided1_seconds) << " users/s)\n"
            << "guided engine, " << hw_threads << "t:    " << guided_hw_seconds
            << " s  (" << users_per_sec(guided_hw_seconds) << " users/s)\n"
            << "rejection stage split: perturb " << stages.perturb_seconds
            << " s, prep " << stages.reconstruct_prep_seconds
            << " s, optimal " << stages.optimal_reconstruct_seconds
            << " s, other " << stages.other_seconds << " s (poi "
            << stages.poi_seconds << " s)\n"
            << "guided stage split:    perturb "
            << guided_stages.perturb_seconds << " s, prep "
            << guided_stages.reconstruct_prep_seconds << " s, optimal "
            << guided_stages.optimal_reconstruct_seconds << " s, other "
            << guided_stages.other_seconds << " s (poi "
            << guided_stages.poi_seconds << " s)\n"
            << "POI stage speedup (guided vs rejection): "
            << poi_stage_speedup << "x"
            << (poi_stage_speedup >= 2.0 ? "  (PASS >=2x)" : "  (FAIL <2x)")
            << "\n"
            << "e2e speedup vs seed loop (engine@" << hw_threads
            << "t): " << speedup_vs_seed << "x"
            << (speedup_vs_seed >= 4.0 ? "  (PASS >=4x)" : "  (FAIL <4x)")
            << "\n"
            << "e2e speedup vs seed loop (engine@1t): " << speedup_1t_vs_seed
            << "x\n"
            << "thread scaling (1t/" << hw_threads << "t): " << scaling
            << "x\n"
            << "batched == sequential (bit-identical): "
            << (identical ? "yes" : "NO — DETERMINISM BUG") << "\n"
            << "guided batched == guided sequential (bit-identical): "
            << (guided_identical ? "yes" : "NO — DETERMINISM BUG") << "\n";
  if (engine1_hw.available) {
    std::cout << "hw counters (engine@1t): ipc " << engine1_hw.sample.Ipc()
              << ", llc misses/n-gram " << llc_per_ngram(engine1_hw)
              << (engine1_hw.llc ? "" : " (llc counters unavailable)")
              << "\n";
  } else {
    std::cout << "hw counters: unavailable\n";
  }
  for (const SweepLeg& leg : sweep) {
    std::cout << "sweep t" << leg.threads << " " << leg.mode_name << ": "
              << users_per_sec(leg.seconds) << " users/s";
    if (leg.hw.available) {
      std::cout << ", ipc " << leg.hw.sample.Ipc() << ", llc misses/n-gram "
                << llc_per_ngram(leg.hw);
    }
    std::cout << "\n";
  }
  std::cout << "cache-mode sweep bit-identical: "
            << (cache_sweep_identical ? "yes" : "NO — DETERMINISM BUG")
            << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open " << json_path << " for writing\n";
      return 1;
    }
    out << "{\n"
        << "  \"bench\": \"batch_e2e\",\n"
        << "  \"num_users\": " << num_users << ",\n"
        << "  \"num_regions\": " << num_regions << ",\n"
        << "  \"num_edges\": " << graph.num_edges() << ",\n"
        << "  \"ngram_n\": " << kN << ",\n"
        << "  \"epsilon\": " << kEpsilon << ",\n"
        << "  \"trajectory_len\": " << kTrajectoryLen << ",\n"
        << "  \"hw_threads\": " << hw_threads << ",\n"
        << "  \"seed_path_seconds\": " << seed_seconds << ",\n"
        << "  \"seed_path_users_per_sec\": " << users_per_sec(seed_seconds)
        << ",\n"
        << "  \"sequential_seconds\": " << sequential_seconds << ",\n"
        << "  \"sequential_users_per_sec\": "
        << users_per_sec(sequential_seconds) << ",\n"
        << "  \"sequential_perturb_seconds\": " << stages.perturb_seconds
        << ",\n"
        << "  \"sequential_prep_seconds\": "
        << stages.reconstruct_prep_seconds << ",\n"
        << "  \"sequential_reconstruct_seconds\": "
        << stages.optimal_reconstruct_seconds << ",\n"
        << "  \"sequential_other_seconds\": " << stages.other_seconds
        << ",\n"
        << "  \"sequential_poi_seconds\": " << stages.poi_seconds << ",\n"
        << "  \"engine_1t_seconds\": " << engine1_seconds << ",\n"
        << "  \"engine_1t_users_per_sec\": " << users_per_sec(engine1_seconds)
        << ",\n"
        << "  \"engine_hw_seconds\": " << engine_hw_seconds << ",\n"
        << "  \"engine_hw_users_per_sec\": "
        << users_per_sec(engine_hw_seconds) << ",\n"
        << "  \"guided_sequential_seconds\": " << guided_sequential_seconds
        << ",\n"
        << "  \"guided_sequential_users_per_sec\": "
        << users_per_sec(guided_sequential_seconds) << ",\n"
        << "  \"guided_perturb_seconds\": " << guided_stages.perturb_seconds
        << ",\n"
        << "  \"guided_prep_seconds\": "
        << guided_stages.reconstruct_prep_seconds << ",\n"
        << "  \"guided_reconstruct_seconds\": "
        << guided_stages.optimal_reconstruct_seconds << ",\n"
        << "  \"guided_other_seconds\": " << guided_stages.other_seconds
        << ",\n"
        << "  \"guided_poi_seconds\": " << guided_stages.poi_seconds
        << ",\n"
        << "  \"guided_engine_1t_seconds\": " << guided1_seconds << ",\n"
        << "  \"guided_engine_hw_seconds\": " << guided_hw_seconds << ",\n"
        << "  \"guided_engine_hw_users_per_sec\": "
        << users_per_sec(guided_hw_seconds) << ",\n"
        << "  \"poi_stage_speedup\": " << poi_stage_speedup << ",\n"
        << "  \"speedup_vs_seed_loop\": " << speedup_vs_seed << ",\n"
        << "  \"speedup_1t_vs_seed_loop\": " << speedup_1t_vs_seed << ",\n"
        << "  \"thread_scaling\": " << scaling << ",\n"
        << "  \"hw_counters_available\": "
        << (engine1_hw.available ? "true" : "false") << ",\n"
        << "  \"llc_counters_available\": "
        << (engine1_hw.llc ? "true" : "false") << ",\n"
        << "  \"engine_1t_ipc\": " << engine1_hw.sample.Ipc() << ",\n"
        << "  \"engine_1t_llc_miss_per_ngram\": " << llc_per_ngram(engine1_hw)
        << ",\n"
        << "  \"guided_engine_1t_ipc\": " << guided1_hw.sample.Ipc() << ",\n"
        << "  \"guided_engine_1t_llc_miss_per_ngram\": "
        << llc_per_ngram(guided1_hw) << ",\n";
    for (const SweepLeg& leg : sweep) {
      const std::string prefix = "sweep_t" + std::to_string(leg.threads) +
                                 "_" + leg.mode_name;
      out << "  \"" << prefix
          << "_users_per_sec\": " << users_per_sec(leg.seconds) << ",\n"
          << "  \"" << prefix << "_ipc\": " << leg.hw.sample.Ipc() << ",\n"
          << "  \"" << prefix << "_llc_miss_per_ngram\": "
          << llc_per_ngram(leg.hw) << ",\n";
    }
    out << "  \"cache_sweep_bit_identical\": "
        << (cache_sweep_identical ? "true" : "false") << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
        << "  \"guided_bit_identical\": "
        << (guided_identical ? "true" : "false") << "\n"
        << "}\n";
    std::cout << "wrote " << json_path << "\n";
  }

  if (!identical || !guided_identical) return 2;
  if (!cache_sweep_identical) return 5;
  if (speedup_vs_seed < 4.0) return 3;
  return poi_stage_speedup >= 2.0 ? 0 : 4;
}

// CI fallback smoke (--hw-probe): exercise the counter harness end to
// end — open, start, measure a trivial region, read — and exit 0
// whether or not the host grants counters. The step exists to catch the
// harness CRASHING on a counter-less host, which would turn graceful
// degradation into a regression; degraded is the expected CI outcome.
int HwProbe() {
  bench::HwCounters hw;
  hw.Start();
  double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink += static_cast<double>(i) * 1e-9;
  const bench::HwSample s = hw.Delta();
  if (hw.available()) {
    std::cout << "hw counters available: cycles " << s.cycles
              << ", instructions " << s.instructions << ", ipc " << s.Ipc()
              << ", llc " << (hw.llc_supported() ? "yes" : "no")
              << " (sink " << sink << ")\n";
  } else {
    std::cout << "hw counters unavailable: " << hw.unavailable_reason()
              << " (sink " << sink << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace trajldp

int main(int argc, char** argv) {
  // Env default first; an explicit --users flag wins over it.
  size_t num_users = 5000;
  if (const char* env = std::getenv("TRAJLDP_BENCH_E2E_USERS")) {
    num_users = static_cast<size_t>(std::atoll(env));
  }
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--users") == 0 && i + 1 < argc) {
      num_users = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--hw-probe") == 0) {
      return trajldp::HwProbe();
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--json PATH] [--users N] [--hw-probe]\n";
      return 1;
    }
  }
  return trajldp::Run(num_users, json_path);
}
