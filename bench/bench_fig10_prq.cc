// Regenerates Figure 10: preservation range queries PR_χ as the query
// radius δ varies, in all three dimensions (space: 0–1 km; time: 0–100
// minutes; category: 0–10), for all methods under default settings.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "eval/range_queries.h"

using namespace trajldp;

namespace {

void PrintCurve(const eval::Dataset& dataset,
                const std::vector<std::pair<std::string,
                                            eval::MethodResult>>& results,
                eval::PrqDimension dimension, const std::string& name,
                const std::vector<double>& deltas) {
  std::cout << "\n--- " << name << " PRQ (" << dataset.name << ") ---\n";
  std::vector<std::string> headers = {"Method"};
  for (double d : deltas) headers.push_back(TablePrinter::Fmt(d, 2));
  TablePrinter table(headers);
  for (const auto& [method_name, result] : results) {
    auto curve = eval::PrqCurve(dataset.db, dataset.time, result.real,
                                result.perturbed, dimension, deltas);
    std::vector<std::string> row = {method_name};
    if (curve.ok()) {
      for (double pr : *curve) row.push_back(TablePrinter::Fmt(pr, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 10: Preservation range queries PR_chi",
                     "paper Figure 10, §7.3");

  auto dataset = eval::MakeTaxiFoursquareDataset(bench::ScaledOptions(
      bench::kDefaultPois, bench::kDefaultTrajectories));
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }

  eval::ExperimentConfig config;
  config.epsilon = 5.0;
  std::vector<std::pair<std::string, eval::MethodResult>> results;
  for (eval::Method method : eval::AllMethods()) {
    auto result = eval::RunMethod(*dataset, method, config);
    if (!result.ok()) {
      std::cerr << eval::MethodName(method) << ": " << result.status()
                << "\n";
      return 1;
    }
    results.emplace_back(eval::MethodName(method), std::move(*result));
    std::cout << "finished " << eval::MethodName(method) << "\n";
  }

  PrintCurve(*dataset, results, eval::PrqDimension::kSpace, "Space (km)",
             {0.1, 0.25, 0.5, 0.75, 1.0});
  PrintCurve(*dataset, results, eval::PrqDimension::kTime,
             "Time (minutes)", {10, 25, 50, 75, 100});
  PrintCurve(*dataset, results, eval::PrqDimension::kCategory, "Category",
             {0.0, 2.0, 3.5, 5.0, 6.5, 8.0, 10.0});

  bench::PrintShapeCheck(
      "Paper Figure 10: all methods are similar on space and time PRQs\n"
      "with NGram slightly ahead; the category PRQ separates them — NGram\n"
      "is clearly superior at every delta_c, with a marked step at\n"
      "delta_c = 3.5 (strong preservation within category levels 2–3).\n"
      "PhysDist's category curve stays near the bottom until delta_c = 10\n"
      "(unrelated categories accepted).");
  return 0;
}
