#include <gtest/gtest.h>

#include "core/mechanism.h"
#include "model/semantic_distance.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

class MechanismFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 6;
    options.cols = 6;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);
  }

  NGramConfig DefaultConfig() const {
    NGramConfig config;
    config.n = 2;
    config.epsilon = 5.0;
    config.decomposition.grid_size = 2;
    config.decomposition.coarse_grids = {1};
    config.decomposition.base_interval_minutes = 120;
    config.decomposition.merge.kappa = 2;
    config.reachability.speed_kmh = 8.0;
    config.reachability.reference_gap_minutes = 60;
    return config;
  }

  model::Trajectory SampleInput() const {
    return MakeTrajectory({{0, 54}, {7, 60}, {14, 72}, {21, 84}});
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
};

TEST_F(MechanismFixture, BuildValidatesConfig) {
  NGramConfig bad = DefaultConfig();
  bad.n = 0;
  EXPECT_FALSE(NGramMechanism::Build(db_.get(), time_, bad).ok());
  bad = DefaultConfig();
  bad.epsilon = -1.0;
  EXPECT_FALSE(NGramMechanism::Build(db_.get(), time_, bad).ok());
}

TEST_F(MechanismFixture, EndToEndProducesValidTrajectory) {
  auto mech = NGramMechanism::Build(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok()) << mech.status();
  EXPECT_GT(mech->preprocessing_seconds(), 0.0);

  const auto input = SampleInput();
  Rng rng(17);
  StageBreakdown stages;
  auto output = mech->Perturb(input, rng, &stages);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->size(), input.size());
  EXPECT_TRUE(output->Validate(time_).ok());
  EXPECT_GT(stages.perturb_seconds, 0.0);
  EXPECT_GE(stages.TotalSeconds(), stages.perturb_seconds);
}

TEST_F(MechanismFixture, DeterministicForSameSeed) {
  auto mech = NGramMechanism::Build(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok());
  const auto input = SampleInput();
  Rng rng1(23), rng2(23);
  auto a = mech->Perturb(input, rng1);
  auto b = mech->Perturb(input, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(MechanismFixture, DifferentSeedsUsuallyDiffer) {
  auto mech = NGramMechanism::Build(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok());
  const auto input = SampleInput();
  int distinct = 0;
  model::Trajectory previous;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    auto out = mech->Perturb(input, rng);
    ASSERT_TRUE(out.ok());
    if (seed > 0 && !(*out == previous)) ++distinct;
    previous = *out;
  }
  EXPECT_GT(distinct, 0);
}

TEST_F(MechanismFixture, WorksForAllNgramLengths) {
  for (int n = 1; n <= 3; ++n) {
    NGramConfig config = DefaultConfig();
    config.n = n;
    auto mech = NGramMechanism::Build(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok()) << "n=" << n;
    const auto input = SampleInput();
    Rng rng(29);
    auto output = mech->Perturb(input, rng);
    ASSERT_TRUE(output.ok()) << "n=" << n << ": " << output.status();
    EXPECT_EQ(output->size(), input.size());
    EXPECT_TRUE(output->Validate(time_).ok());
  }
}

TEST_F(MechanismFixture, LpReconstructionModeWorksEndToEnd) {
  NGramConfig config = DefaultConfig();
  config.use_lp_reconstruction = true;
  auto mech = NGramMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  const auto input = MakeTrajectory({{0, 54}, {7, 60}, {14, 72}});
  Rng rng(31);
  auto output = mech->Perturb(input, rng);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->size(), input.size());
  EXPECT_TRUE(output->Validate(time_).ok());
}

TEST_F(MechanismFixture, LpAndDpAgreeOnReconstructionObjective) {
  // With identical seeds the perturbed n-grams are identical, so the two
  // reconstructors solve the same problem; their outputs must score the
  // same region-level objective (they may differ on exact ties).
  NGramConfig dp_config = DefaultConfig();
  NGramConfig lp_config = DefaultConfig();
  lp_config.use_lp_reconstruction = true;
  auto dp = NGramMechanism::Build(db_.get(), time_, dp_config);
  auto lp = NGramMechanism::Build(db_.get(), time_, lp_config);
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(lp.ok());

  auto tau = dp->decomposition().ToRegionTrajectory(
      MakeTrajectory({{0, 54}, {7, 60}, {14, 72}}));
  ASSERT_TRUE(tau.ok());

  Rng rng1(37), rng2(37);
  auto dp_regions = dp->PerturbRegions(*tau, rng1);
  auto lp_regions = lp->PerturbRegions(*tau, rng2);
  ASSERT_TRUE(dp_regions.ok());
  ASSERT_TRUE(lp_regions.ok());

  // Compare total distance to the (identical) perturbed evidence by
  // recomputing through a shared distance: both must visit regions the
  // graph connects and have the same length.
  ASSERT_EQ(dp_regions->size(), lp_regions->size());
  for (size_t i = 0; i + 1 < dp_regions->size(); ++i) {
    EXPECT_TRUE(dp->graph().HasEdge((*dp_regions)[i], (*dp_regions)[i + 1]));
    EXPECT_TRUE(lp->graph().HasEdge((*lp_regions)[i], (*lp_regions)[i + 1]));
  }
}

TEST_F(MechanismFixture, RegionLevelPipelineRespectsGraph) {
  auto mech = NGramMechanism::Build(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok());
  auto tau = mech->decomposition().ToRegionTrajectory(SampleInput());
  ASSERT_TRUE(tau.ok());
  Rng rng(41);
  auto regions = mech->PerturbRegions(*tau, rng);
  ASSERT_TRUE(regions.ok());
  ASSERT_EQ(regions->size(), tau->size());
  for (size_t i = 0; i + 1 < regions->size(); ++i) {
    EXPECT_TRUE(mech->graph().HasEdge((*regions)[i], (*regions)[i + 1]));
  }
}

TEST_F(MechanismFixture, HighEpsilonTracksInputClosely) {
  // With a huge budget the mechanism should essentially return the
  // input's own regions; verify the perturbed output stays close in the
  // combined metric compared to a tiny budget.
  NGramConfig high = DefaultConfig();
  high.epsilon = 1000.0;
  NGramConfig low = DefaultConfig();
  low.epsilon = 0.01;
  auto mech_high = NGramMechanism::Build(db_.get(), time_, high);
  auto mech_low = NGramMechanism::Build(db_.get(), time_, low);
  ASSERT_TRUE(mech_high.ok());
  ASSERT_TRUE(mech_low.ok());

  const model::SemanticDistance dist(db_.get(), time_);
  const auto input = SampleInput();
  double err_high = 0.0, err_low = 0.0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng1(seed), rng2(seed);
    auto a = mech_high->Perturb(input, rng1);
    auto b = mech_low->Perturb(input, rng2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    err_high += dist.BetweenTrajectories(input, *a);
    err_low += dist.BetweenTrajectories(input, *b);
  }
  EXPECT_LT(err_high, err_low);
}

TEST_F(MechanismFixture, PerturbRejectsInvalidInput) {
  auto mech = NGramMechanism::Build(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok());
  Rng rng(43);
  // Decreasing timesteps.
  auto bad = MakeTrajectory({{0, 60}, {1, 50}});
  EXPECT_FALSE(mech->Perturb(bad, rng).ok());
}

}  // namespace
}  // namespace trajldp::core
