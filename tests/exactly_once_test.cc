// The exactly-once ingest suite: a real ReportClient in sequenced mode,
// a real journaling IngestServer, and a FaultProxy injecting byte-level
// network faults between them. The oracle in every test is the same one
// the rest of the repo uses — core::MergeShardReleases hard-fails on a
// missing OR duplicated user, then the merged output is compared
// bit-for-bit against BatchReleaseEngine::ReleaseAllFull — so "zero
// lost, zero double-ingested" is checked by construction, not by
// counters alone.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/shard_plan.h"
#include "core/streaming_collector.h"
#include "io/wire.h"
#include "net/fault_proxy.h"
#include "net/ingest_server.h"
#include "net/report_client.h"
#include "test_world.h"

namespace trajldp::net {
namespace {

using core::FullRelease;
using core::StreamingCollector;
using core::UserRelease;
using trajldp::testing::MakeGridWorld;

bool WaitFor(const std::function<bool()>& condition,
             std::chrono::seconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class ExactlyOnceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 15;
    options.cols = 15;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    core::NGramConfig config;
    config.n = 2;
    config.epsilon = 5.0;
    config.decomposition.grid_size = 5;
    config.decomposition.coarse_grids = {1};
    config.decomposition.base_interval_minutes = 720;
    config.decomposition.merge.kappa = 1;
    config.reachability.speed_kmh = 30.0;
    config.reachability.reference_gap_minutes = 60;
    auto mech = core::NGramMechanism::Build(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok()) << mech.status();
    mech_ = std::make_unique<core::NGramMechanism>(std::move(*mech));
  }

  std::vector<region::RegionTrajectory> MakeUsers(size_t count,
                                                  uint64_t seed) const {
    const auto num_regions =
        static_cast<uint64_t>(mech_->decomposition().num_regions());
    Rng rng(seed);
    std::vector<region::RegionTrajectory> users(count);
    for (auto& tau : users) {
      const size_t len = 2 + static_cast<size_t>(rng.UniformUint64(4));
      for (size_t i = 0; i < len; ++i) {
        tau.push_back(
            static_cast<region::RegionId>(rng.UniformUint64(num_regions)));
      }
    }
    return users;
  }

  io::ReportBatch MakeReports(
      const std::vector<region::RegionTrajectory>& users, uint64_t seed) {
    core::BatchReleaseEngine engine(&mech_->perturber(),
                                    core::BatchReleaseEngine::Config{2});
    auto perturbed = engine.ReleaseAll(users, seed);
    EXPECT_TRUE(perturbed.ok()) << perturbed.status();
    return MakeWireReports(users, std::move(*perturbed), mech_->perturber());
  }

  std::vector<FullRelease> Reference(
      const std::vector<region::RegionTrajectory>& users, uint64_t seed) {
    core::BatchReleaseEngine engine(mech_.get(),
                                    core::BatchReleaseEngine::Config{2});
    auto reference = engine.ReleaseAllFull(users, seed);
    EXPECT_TRUE(reference.ok()) << reference.status();
    return std::move(*reference);
  }

  struct Shard {
    std::vector<UserRelease> out;
    std::unique_ptr<StreamingCollector> collector;
    std::unique_ptr<IngestServer> server;
  };

  /// A shard in full exactly-once trim: journaling server + a collector
  /// with the per-user-id dedup backstop on.
  std::unique_ptr<Shard> StartJournaledShard(uint64_t seed,
                                             const std::string& journal_path) {
    IngestServer::Options options;
    options.journal_path = journal_path;
    StreamingCollector::Config config;
    config.dedup_user_ids = true;
    return StartShard(seed, options, config);
  }

  std::unique_ptr<Shard> StartShard(uint64_t seed,
                                    IngestServer::Options options = {},
                                    StreamingCollector::Config config = {}) {
    auto shard = std::make_unique<Shard>();
    Shard* raw = shard.get();
    shard->collector = std::make_unique<StreamingCollector>(
        mech_.get(), seed,
        [raw](UserRelease release) {
          raw->out.push_back(std::move(release));
        },
        config);
    auto server = IngestServer::Start(shard->collector.get(), options);
    EXPECT_TRUE(server.ok()) << server.status();
    if (!server.ok()) return nullptr;
    shard->server = std::move(*server);
    return shard;
  }

  static ReportClient::Options SequencedOptions(uint64_t stream_id,
                                                size_t window = 4) {
    ReportClient::Options options;
    options.enable_sequencing = true;
    options.stream_id = stream_id;
    options.window = window;
    // Fault tests deliberately kill connections; give the client room to
    // redial without waiting out production backoffs.
    options.max_attempts = 25;
    options.initial_backoff = std::chrono::milliseconds(1);
    options.max_backoff = std::chrono::milliseconds(50);
    return options;
  }

  static void SendInBatches(ReportClient& client,
                            const io::ReportBatch& reports,
                            size_t batch_size) {
    for (size_t begin = 0; begin < reports.size(); begin += batch_size) {
      const size_t end = std::min(begin + batch_size, reports.size());
      ASSERT_TRUE(client
                      .SendBatch(std::span<const io::WireReport>(
                          reports.data() + begin, end - begin))
                      .ok());
    }
  }

  /// Fresh journal path under the test temp dir (any stale file removed).
  static std::string JournalPath(const std::string& name) {
    const auto path =
        std::filesystem::path(::testing::TempDir()) / (name + ".journal");
    std::filesystem::remove(path);
    return path.string();
  }

  void ExpectIdenticalReleases(const std::vector<FullRelease>& a,
                               const std::vector<FullRelease>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].regions, b[i].regions) << "user " << i;
      EXPECT_EQ(a[i].trajectory, b[i].trajectory) << "user " << i;
      EXPECT_EQ(a[i].poi_attempts, b[i].poi_attempts) << "user " << i;
      EXPECT_EQ(a[i].smoothed, b[i].smoothed) << "user " << i;
    }
  }

  /// The zero-loss / zero-double-ingest oracle: drain, merge (hard-fails
  /// on missing or duplicated users), compare bit-for-bit.
  void FinishAndVerify(Shard* shard,
                       const std::vector<FullRelease>& reference) {
    ASSERT_TRUE(WaitFor([&] {
      return shard->collector->reports_released() == reference.size();
    }));
    shard->server->Shutdown();
    ASSERT_TRUE(shard->collector->Finish().ok());
    std::vector<std::vector<UserRelease>> outputs;
    outputs.push_back(std::move(shard->out));
    auto merged =
        core::MergeShardReleases(std::move(outputs), reference.size());
    ASSERT_TRUE(merged.ok()) << merged.status();
    ExpectIdenticalReleases(*merged, reference);
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<core::NGramMechanism> mech_;
};

// ---------- the happy path, fully instrumented ----------

TEST_F(ExactlyOnceFixture, SequencedJournaledPathIsBitIdentical) {
  const uint64_t seed = 20260808;
  const auto users = MakeUsers(24, 3);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartJournaledShard(seed, JournalPath("happy"));
  ASSERT_NE(shard, nullptr);

  ReportClient client("127.0.0.1", shard->server->port(),
                      SequencedOptions(1));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  // Flush is the delivery barrier: every one of the 8 frames is acked
  // durable, none needed a second transmission.
  EXPECT_EQ(client.last_ack(), 8u);
  EXPECT_GE(client.acks_received(), 8u);
  EXPECT_EQ(client.frames_resent(), 0u);
  client.Close();

  ASSERT_TRUE(WaitFor([&] {
    return shard->collector->reports_released() == users.size();
  }));
  const auto stats = shard->server->stats();
  EXPECT_EQ(stats.frames_journaled, 8u);
  EXPECT_EQ(stats.frames_replayed, 0u);
  EXPECT_EQ(stats.duplicate_frames_dropped, 0u);
  EXPECT_EQ(stats.duplicate_reports_dropped, 0u);
  // The ingest queue was exercised and its high-water mark surfaced.
  EXPECT_GE(stats.queue_high_water, 1u);
  EXPECT_TRUE(shard->server->first_connection_error().ok())
      << shard->server->first_connection_error();
  FinishAndVerify(shard.get(), reference);
}

// ---------- injected faults, one per test ----------

TEST_F(ExactlyOnceFixture, DuplicatedFrameAbsorbedBySequenceDedup) {
  const uint64_t seed = 41;
  const auto users = MakeUsers(24, 5);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartJournaledShard(seed, JournalPath("dup"));
  ASSERT_NE(shard, nullptr);

  FaultPlan plan;
  plan.duplicate_frame = 1;  // frame seq 2 arrives twice, back to back
  auto proxy =
      FaultProxy::Start("127.0.0.1", shard->server->port(), {plan});
  ASSERT_TRUE(proxy.ok()) << proxy.status();

  ReportClient client("127.0.0.1", (*proxy)->port(), SequencedOptions(1));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.last_ack(), 8u);
  client.Close();

  ASSERT_TRUE(WaitFor([&] {
    return shard->server->stats().duplicate_frames_dropped >= 1;
  }));
  // A wire duplicate is absorbed, not an error: the connection lives.
  EXPECT_TRUE(shard->server->first_connection_error().ok())
      << shard->server->first_connection_error();
  EXPECT_EQ((*proxy)->faults_injected(), 1u);
  EXPECT_EQ(shard->server->stats().frames_ingested, 8u);
  FinishAndVerify(shard.get(), reference);
  (*proxy)->Shutdown();
}

TEST_F(ExactlyOnceFixture, CorruptedFrameFailsConnectionAndIsResent) {
  const uint64_t seed = 43;
  const auto users = MakeUsers(24, 7);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartJournaledShard(seed, JournalPath("corrupt"));
  ASSERT_NE(shard, nullptr);

  FaultPlan plan;
  plan.corrupt_frame = 1;  // one flipped payload byte in frame seq 2
  auto proxy =
      FaultProxy::Start("127.0.0.1", shard->server->port(), {plan});
  ASSERT_TRUE(proxy.ok()) << proxy.status();

  ReportClient client("127.0.0.1", (*proxy)->port(), SequencedOptions(1));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.last_ack(), 8u);
  // The CRC gate killed the first connection; the window resent its
  // unacked suffix on the reconnect.
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(client.frames_resent(), 1u);
  client.Close();

  auto error = shard->server->first_connection_error();
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.message().find("checksum"), std::string::npos) << error;
  EXPECT_EQ(shard->server->stats().connections_failed, 1u);
  FinishAndVerify(shard.get(), reference);
  (*proxy)->Shutdown();
}

TEST_F(ExactlyOnceFixture, DroppedFrameDetectedAsSequenceGapAndResent) {
  const uint64_t seed = 47;
  const auto users = MakeUsers(24, 9);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartJournaledShard(seed, JournalPath("drop"));
  ASSERT_NE(shard, nullptr);

  FaultPlan plan;
  plan.drop_frame = 1;  // frame seq 2 silently vanishes in the network
  auto proxy =
      FaultProxy::Start("127.0.0.1", shard->server->port(), {plan});
  ASSERT_TRUE(proxy.ok()) << proxy.status();

  ReportClient client("127.0.0.1", (*proxy)->port(), SequencedOptions(1));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.last_ack(), 8u);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(client.frames_resent(), 1u);
  client.Close();

  // The hole surfaced when seq 3 arrived after high-water 1: acking past
  // it would have declared a never-received frame durable.
  auto error = shard->server->first_connection_error();
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.message().find("sequence gap"), std::string::npos)
      << error;
  FinishAndVerify(shard.get(), reference);
  (*proxy)->Shutdown();
}

TEST_F(ExactlyOnceFixture, MidFrameCutIsResent) {
  const uint64_t seed = 53;
  const auto users = MakeUsers(24, 11);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartJournaledShard(seed, JournalPath("cut_mid"));
  ASSERT_NE(shard, nullptr);

  FaultPlan plan;
  plan.cut_after_frames = 1;  // one full frame, then...
  plan.cut_extra_bytes = 10;  // ...10 bytes of seq 2, then RST
  auto proxy =
      FaultProxy::Start("127.0.0.1", shard->server->port(), {plan});
  ASSERT_TRUE(proxy.ok()) << proxy.status();

  ReportClient client("127.0.0.1", (*proxy)->port(), SequencedOptions(1));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.last_ack(), 8u);
  EXPECT_GE(client.reconnects(), 1u);
  EXPECT_GE(client.frames_resent(), 1u);
  client.Close();

  auto error = shard->server->first_connection_error();
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.message().find("truncated"), std::string::npos) << error;
  FinishAndVerify(shard.get(), reference);
  (*proxy)->Shutdown();
}

TEST_F(ExactlyOnceFixture, CleanBoundaryCutLooksLikeEofAndStillDelivers) {
  const uint64_t seed = 59;
  const auto users = MakeUsers(24, 13);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartJournaledShard(seed, JournalPath("cut_clean"));
  ASSERT_NE(shard, nullptr);

  FaultPlan plan;
  plan.cut_after_frames = 2;  // cut exactly on a frame boundary
  plan.cut_extra_bytes = 0;
  auto proxy =
      FaultProxy::Start("127.0.0.1", shard->server->port(), {plan});
  ASSERT_TRUE(proxy.ok()) << proxy.status();

  ReportClient client("127.0.0.1", (*proxy)->port(), SequencedOptions(1));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.last_ack(), 8u);
  EXPECT_GE(client.reconnects(), 1u);
  client.Close();

  // From the server's side the boundary cut is either a well-formed
  // stream end (clean FIN) or a failed ack write into the dead socket —
  // a timing race the protocol must tolerate. Whichever way it lands,
  // nothing is lost: the window resent the unacked suffix.
  const auto error = shard->server->first_connection_error();
  if (!error.ok()) {
    EXPECT_NE(error.message().find("send"), std::string::npos) << error;
  }
  FinishAndVerify(shard.get(), reference);
  (*proxy)->Shutdown();
}

TEST_F(ExactlyOnceFixture, StallDelaysButLosesNothing) {
  const uint64_t seed = 61;
  const auto users = MakeUsers(24, 15);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartJournaledShard(seed, JournalPath("stall"));
  ASSERT_NE(shard, nullptr);

  FaultPlan plan;
  plan.stall_before_frame = 1;
  plan.stall_for = std::chrono::milliseconds(300);
  auto proxy =
      FaultProxy::Start("127.0.0.1", shard->server->port(), {plan});
  ASSERT_TRUE(proxy.ok()) << proxy.status();

  ReportClient client("127.0.0.1", (*proxy)->port(), SequencedOptions(1));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.last_ack(), 8u);
  // A stall is latency, not loss: no reconnect, no resend, no error.
  EXPECT_EQ(client.reconnects(), 0u);
  EXPECT_EQ(client.frames_resent(), 0u);
  client.Close();

  EXPECT_TRUE(shard->server->first_connection_error().ok());
  EXPECT_EQ((*proxy)->faults_injected(), 1u);
  FinishAndVerify(shard.get(), reference);
  (*proxy)->Shutdown();
}

// ---------- restart, replay, and the dedup backstop ----------

TEST_F(ExactlyOnceFixture, RestartReplaysJournalAndResumesBitIdentical) {
  const uint64_t seed = 67;
  const auto users = MakeUsers(24, 17);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  const std::string journal = JournalPath("restart");

  // Generation 1: ingest the first half (frames seq 1..4), then die.
  // Its in-memory output is deliberately discarded — after a crash, the
  // journal is all that survives.
  {
    auto shard = StartJournaledShard(seed, journal);
    ASSERT_NE(shard, nullptr);
    ReportClient client("127.0.0.1", shard->server->port(),
                        SequencedOptions(1, /*window=*/2));
    SendInBatches(client,
                  io::ReportBatch(reports.begin(), reports.begin() + 12), 3);
    ASSERT_TRUE(client.Flush().ok());
    EXPECT_EQ(client.last_ack(), 4u);
    client.Close();
    shard->server->Shutdown();
    ASSERT_TRUE(shard->collector->Finish().ok());
  }

  // Generation 2: same journal, fresh collector. Start() replays the 4
  // durable frames through the normal ingest path and rebuilds the
  // stream's high-water mark before accepting a single connection.
  auto shard = StartJournaledShard(seed, journal);
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->server->stats().frames_replayed, 4u);

  // The device also restarted from scratch: a fresh client on the SAME
  // stream resends everything from seq 1. The recovered high-water mark
  // absorbs 1..4 (re-acked instantly, never re-ingested); 5..8 are new.
  ReportClient client("127.0.0.1", shard->server->port(),
                      SequencedOptions(1, /*window=*/2));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.last_ack(), 8u);
  client.Close();

  ASSERT_TRUE(WaitFor([&] {
    return shard->collector->reports_released() == users.size();
  }));
  const auto stats = shard->server->stats();
  EXPECT_EQ(stats.duplicate_frames_dropped, 4u);
  EXPECT_EQ(stats.frames_journaled, 4u);  // this generation's appends
  EXPECT_TRUE(shard->server->first_connection_error().ok())
      << shard->server->first_connection_error();
  // The restarted run is bit-identical to one that never crashed.
  FinishAndVerify(shard.get(), reference);
}

TEST_F(ExactlyOnceFixture, FreshStreamReuploadCaughtByUserIdDedup) {
  // The second exactly-once layer: sequence dedup cannot recognise a
  // re-upload on a NEW stream id (new device generation, empty window),
  // so the collector's per-user-id dedup is the backstop.
  const uint64_t seed = 71;
  const auto users = MakeUsers(24, 19);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartJournaledShard(seed, JournalPath("reupload"));
  ASSERT_NE(shard, nullptr);

  ReportClient first("127.0.0.1", shard->server->port(),
                     SequencedOptions(1));
  SendInBatches(first, reports, 3);
  ASSERT_TRUE(first.Flush().ok());
  first.Close();
  ASSERT_TRUE(WaitFor([&] {
    return shard->collector->reports_released() == users.size();
  }));

  ReportClient second("127.0.0.1", shard->server->port(),
                      SequencedOptions(2));
  SendInBatches(second, reports, 3);
  ASSERT_TRUE(second.Flush().ok());
  second.Close();

  ASSERT_TRUE(WaitFor([&] {
    return shard->server->stats().duplicate_reports_dropped == users.size();
  }));
  EXPECT_EQ(shard->collector->reports_released(), users.size());
  EXPECT_EQ(shard->server->stats().frames_ingested, 16u);
  FinishAndVerify(shard.get(), reference);
}

// ---------- durability maintenance: idle-tail flush, compaction ----------

TEST_F(ExactlyOnceFixture, TimedPolicyFlushesIdleTailWithoutFurtherAppends) {
  // Regression for the kTimed durability hole: the policy used to check
  // the clock only AT an append, so a burst followed by silence left
  // the tail unsynced forever. The reactor's deadline-armed flush must
  // sync it within sync_interval with NO further appends arriving.
  const uint64_t seed = 73;
  const auto users = MakeUsers(12, 21);
  const auto reports = MakeReports(users, seed);
  const std::string journal = JournalPath("idle_flush");

  IngestServer::Options options;
  options.journal_path = journal;
  options.journal_options.sync = io::FrameJournal::SyncPolicy::kTimed;
  // Long enough that the burst below finishes well inside one interval
  // (so the appends themselves never trip a sync), short enough to wait.
  options.journal_options.sync_interval = std::chrono::milliseconds(200);
  StreamingCollector::Config config;
  config.dedup_user_ids = true;
  auto shard = StartShard(seed, options, config);
  ASSERT_NE(shard, nullptr);

  ReportClient client("127.0.0.1", shard->server->port(),
                      SequencedOptions(1));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  client.Close();
  // ... and then the stream goes idle. The unsynced tail must reach the
  // disk on the timer, observable as the counter draining to zero.
  ASSERT_TRUE(WaitFor([&] {
    return shard->server->stats().journal_unsynced_bytes == 0 &&
           shard->server->stats().frames_journaled == 4u;
  }));

  // Belt and braces: a copy of the journal file taken NOW (server still
  // up, nothing closed) must already hold every record — that is what
  // "synced" buys across a machine crash.
  const std::string copy = JournalPath("idle_flush_copy");
  std::filesystem::copy_file(journal, copy);
  auto reopened = io::FrameJournal::Open(copy, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->records(), 4u);
  EXPECT_EQ(reopened->recovery_info().truncated_bytes, 0u);

  shard->server->Shutdown();
  ASSERT_TRUE(shard->collector->Finish().ok());
}

TEST_F(ExactlyOnceFixture, CompactionShrinksJournalAndRestartStaysBitIdentical) {
  // End-to-end over the compaction feedback loop: releases flow through
  // on_frame_processed into ReleaseWatermarks, the server compacts on a
  // tiny size threshold mid-stream, and a restart over the compacted
  // journal (replay + hwm markers + the pre-released dedup preseed
  // standing in for persisted downstream releases) is bit-identical.
  const uint64_t seed = 79;
  const auto users = MakeUsers(24, 23);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  const std::string journal = JournalPath("compact_restart");

  ReleaseWatermarks watermarks;
  IngestServer::Options options;
  options.journal_path = journal;
  options.journal_compact_threshold_bytes = 1024;  // several runs mid-stream
  options.compact_watermarks = [&watermarks] { return watermarks.Snapshot(); };
  StreamingCollector::Config config;
  config.dedup_user_ids = true;
  config.on_frame_processed = [&watermarks](uint64_t stream, uint64_t seq) {
    watermarks.Note(stream, seq);
  };

  std::vector<UserRelease> generation1;
  {
    auto shard = StartShard(seed, options, config);
    ASSERT_NE(shard, nullptr);
    ReportClient client("127.0.0.1", shard->server->port(),
                        SequencedOptions(1, /*window=*/2));
    SendInBatches(client, reports, 3);
    ASSERT_TRUE(client.Flush().ok());
    EXPECT_EQ(client.last_ack(), 8u);
    client.Close();
    // Wait until stream 1 is fully durable downstream: every report
    // released AND the watermark floor at the last frame.
    ASSERT_TRUE(WaitFor([&] {
      return shard->collector->reports_released() == users.size();
    }));
    ASSERT_TRUE(WaitFor([&] {
      auto snapshot = watermarks.Snapshot();
      return snapshot.count(1) != 0 && snapshot[1] == 8u;
    }));
    // A second stream re-uploads everything (fresh device generation).
    // Its appends grow the journal past the threshold AGAIN — so at
    // least one compaction now runs with stream 1's watermark at 8 and
    // must drop every one of its data records. The re-uploaded reports
    // themselves fall to the user-id dedup backstop.
    ReportClient second("127.0.0.1", shard->server->port(),
                        SequencedOptions(2, /*window=*/2));
    SendInBatches(second, reports, 3);
    ASSERT_TRUE(second.Flush().ok());
    second.Close();
    ASSERT_TRUE(WaitFor([&] {
      return shard->server->stats().duplicate_reports_dropped == users.size();
    }));
    EXPECT_GE(shard->server->stats().journal_compactions, 2u);
    shard->server->Shutdown();
    ASSERT_TRUE(shard->collector->Finish().ok());
    generation1 = std::move(shard->out);
  }
  // The compacted journal: stream 1 is down to its high-water marker —
  // no data record survives — while the file as a whole still recovers
  // cleanly (the rewrite-and-rename left no torn state).
  {
    auto recovered = io::FrameJournal::Open(journal, {});
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->recovery_info().truncated_bytes, 0u);
    bool stream1_marker = false;
    size_t stream1_data_records = 0;
    ASSERT_TRUE(recovered
                    ->Replay([&](uint64_t stream_id, uint64_t seq,
                                 std::string_view frame) {
                      if (stream_id == 1 && frame.empty() && seq == 8) {
                        stream1_marker = true;
                      } else if (stream_id == 1 && !frame.empty()) {
                        ++stream1_data_records;
                      }
                      return Status::Ok();
                    })
                    .ok());
    EXPECT_TRUE(stream1_marker);
    EXPECT_EQ(stream1_data_records, 0u);
  }

  // Generation 2: the releases of generation 1 are "durable downstream"
  // (the harness persists them via its partial log; here the vector
  // plays that role), so they preseed the dedup set. The same device
  // stream resends EVERYTHING from seq 1: the marker-rebuilt high-water
  // mark absorbs acked frames, replayed suffix frames dedup by user id,
  // and the merged two-generation output is bit-identical.
  StreamingCollector::Config config2;
  config2.dedup_user_ids = true;
  for (const auto& release : generation1) {
    config2.pre_released_user_ids.push_back(release.user_id);
  }
  IngestServer::Options options2;
  options2.journal_path = journal;
  auto shard = StartShard(seed, options2, config2);
  ASSERT_NE(shard, nullptr);

  ReportClient client("127.0.0.1", shard->server->port(),
                      SequencedOptions(1, /*window=*/2));
  SendInBatches(client, reports, 3);
  ASSERT_TRUE(client.Flush().ok());
  EXPECT_EQ(client.last_ack(), 8u);

  // Every resent frame bounced off the marker-recovered high-water mark;
  // NONE misread as a sequence gap (the failure compaction markers
  // exist to prevent). Wait with the connection still open: the first
  // cumulative ack (= 8) already satisfied Flush, so closing now could
  // reset the connection while later resends sit unread in the
  // server's receive buffer.
  ASSERT_TRUE(WaitFor([&] {
    return shard->server->stats().duplicate_frames_dropped >= 8u;
  }));
  client.Close();
  const auto error = shard->server->first_connection_error();
  if (!error.ok()) {
    EXPECT_EQ(error.message().find("sequence gap"), std::string::npos)
        << error;
  }
  shard->server->Shutdown();
  ASSERT_TRUE(shard->collector->Finish().ok());

  std::vector<std::vector<UserRelease>> outputs;
  outputs.push_back(std::move(generation1));
  outputs.push_back(std::move(shard->out));
  auto merged = core::MergeShardReleases(std::move(outputs), users.size());
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectIdenticalReleases(*merged, reference);
}

// ---------- the backoff schedule ----------

TEST(DecorrelatedBackoffTest, EveryDrawStaysWithinBounds) {
  const auto base = std::chrono::milliseconds(25);
  const auto cap = std::chrono::milliseconds(400);
  Rng rng(99);
  auto previous = base;
  size_t at_base = 0;
  size_t distinct_above_base = 0;
  auto last = std::chrono::milliseconds(-1);
  for (int i = 0; i < 2000; ++i) {
    const auto sleep =
        ReportClient::DecorrelatedBackoff(previous, base, cap, rng);
    EXPECT_GE(sleep, base) << "draw " << i;
    EXPECT_LE(sleep, cap) << "draw " << i;
    EXPECT_LE(sleep, std::min(cap, std::max(base, 3 * previous)))
        << "draw " << i;
    if (sleep == base) ++at_base;
    if (sleep > base && sleep != last) ++distinct_above_base;
    last = sleep;
    previous = sleep;
  }
  // It actually jitters: the schedule is not pinned to either bound.
  EXPECT_LT(at_base, 2000u);
  EXPECT_GT(distinct_above_base, 10u);
}

TEST(DecorrelatedBackoffTest, DegenerateRangesCollapseCleanly) {
  Rng rng(7);
  // cap below base: the cap wins.
  EXPECT_EQ(ReportClient::DecorrelatedBackoff(
                std::chrono::milliseconds(100), std::chrono::milliseconds(50),
                std::chrono::milliseconds(10), rng),
            std::chrono::milliseconds(10));
  // previous below base/3: the window collapses to [base, base].
  EXPECT_EQ(ReportClient::DecorrelatedBackoff(
                std::chrono::milliseconds(0), std::chrono::milliseconds(20),
                std::chrono::milliseconds(1000), rng),
            std::chrono::milliseconds(20));
}

}  // namespace
}  // namespace trajldp::net
