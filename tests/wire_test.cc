#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "io/wire.h"

namespace trajldp::io {
namespace {

// ---------- helpers ----------

// Randomized but structurally valid report: trajectory length in
// [1, 12], a paper-shaped n-gram cover (mains + prefix/suffix ends) with
// arbitrary region ids, a per-draw ε′ derived from the length.
WireReport RandomReport(Rng& rng, uint64_t user_id) {
  WireReport report;
  report.user_id = user_id;
  const size_t len = 1 + static_cast<size_t>(rng.UniformUint64(12));
  report.trajectory_len = static_cast<uint32_t>(len);
  const size_t n = std::min<size_t>(len, 1 + rng.UniformUint64(3));
  report.epsilon_prime = 5.0 / static_cast<double>(len + n - 1);
  auto random_gram = [&](size_t a, size_t b) {
    core::PerturbedNgram gram;
    gram.a = a;
    gram.b = b;
    gram.regions.resize(b - a + 1);
    for (auto& r : gram.regions) {
      r = static_cast<region::RegionId>(rng.UniformUint64(1u << 20));
    }
    return gram;
  };
  for (size_t a = 1; a + n - 1 <= len; ++a) {
    report.ngrams.push_back(random_gram(a, a + n - 1));
  }
  for (size_t m = 1; m < n; ++m) {
    report.ngrams.push_back(random_gram(1, m));
    report.ngrams.push_back(random_gram(len - m + 1, len));
  }
  return report;
}

ReportBatch RandomBatch(Rng& rng, size_t count, uint64_t first_user) {
  ReportBatch batch;
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(RandomReport(rng, first_user + i));
  }
  return batch;
}

// ---------- round trips ----------

TEST(WireRoundTripTest, RandomizedBatchesSurviveEncodeDecode) {
  Rng rng(20260729);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t count = rng.UniformUint64(9);  // includes empty batches
    const ReportBatch batch = RandomBatch(rng, count, trial * 1000);
    const std::string frame = *EncodeReportBatch(batch);
    auto decoded = DecodeReportBatch(frame);
    ASSERT_TRUE(decoded.ok()) << "trial " << trial << ": "
                              << decoded.status();
    EXPECT_EQ(*decoded, batch) << "trial " << trial;
  }
}

TEST(WireRoundTripTest, PreservesExtremeFieldValues) {
  WireReport report;
  report.user_id = ~uint64_t{0};
  report.epsilon_prime = 0.1234567890123456789;  // full double precision
  report.trajectory_len = 3;
  report.ngrams.push_back(core::PerturbedNgram{1, 3, {0, ~uint32_t{0}, 7}});
  const ReportBatch batch{report};
  auto decoded = DecodeReportBatch(*EncodeReportBatch(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, batch);
}

TEST(WireRoundTripTest, EmptyBatchIsACompleteFrame) {
  const std::string frame = *EncodeReportBatch(ReportBatch{});
  EXPECT_EQ(frame.size(), kWireHeaderBytes + kWireTrailerBytes);
  auto decoded = DecodeReportBatch(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->empty());
}

TEST(WireFormatTest, EncodingIsByteStableAcrossCalls) {
  Rng rng(7);
  const ReportBatch batch = RandomBatch(rng, 4, 0);
  EXPECT_EQ(*EncodeReportBatch(batch), *EncodeReportBatch(batch));
}

TEST(WireFormatTest, Crc32MatchesKnownVector) {
  // The classic IEEE 802.3 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

// ---------- malformed input: every failure is a clean Status ----------

class WireMalformedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    batch_ = RandomBatch(rng, 3, 42);
    frame_ = *EncodeReportBatch(batch_);
  }

  ReportBatch batch_;
  std::string frame_;
};

TEST_F(WireMalformedTest, TruncationAtEveryLengthFailsCleanly) {
  for (size_t len = 0; len < frame_.size(); ++len) {
    auto decoded = DecodeReportBatch(frame_.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST_F(WireMalformedTest, BadMagicRejected) {
  std::string bad = frame_;
  bad[0] = 'X';
  auto decoded = DecodeReportBatch(bad);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST_F(WireMalformedTest, WrongVersionRejected) {
  std::string bad = frame_;
  bad[4] = 9;  // version low byte
  auto decoded = DecodeReportBatch(bad);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented);
}

TEST_F(WireMalformedTest, ReservedFlagsRejected) {
  // 0x01 (user range) and 0x02 (sequence) are the known flags; every
  // other bit stays reserved.
  std::string bad = frame_;
  bad[6] = 4;  // flags low byte: a bit no decoder speaks
  auto decoded = DecodeReportBatch(bad);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  bad[6] = 0;
  bad[7] = 1;  // flags high byte
  EXPECT_FALSE(DecodeReportBatch(bad).ok());
}

TEST_F(WireMalformedTest, CorruptedChecksumRejected) {
  std::string bad = frame_;
  bad.back() = static_cast<char>(bad.back() ^ 0x40);
  auto decoded = DecodeReportBatch(bad);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos);
}

TEST_F(WireMalformedTest, CorruptedPayloadByteRejected) {
  // Any payload flip must be caught by the CRC before field validation
  // can be confused by it.
  std::string bad = frame_;
  bad[kWireHeaderBytes + 3] = static_cast<char>(bad[kWireHeaderBytes + 3] ^ 1);
  EXPECT_FALSE(DecodeReportBatch(bad).ok());
}

TEST_F(WireMalformedTest, TrailingBytesRejected) {
  auto decoded = DecodeReportBatch(frame_ + "x");
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("trailing"), std::string::npos);
}

TEST_F(WireMalformedTest, OversizedDeclaredReportCountRejected) {
  // Forge a frame claiming 2^31 reports over a tiny payload: the decoder
  // must refuse before sizing any allocation from the count. Re-checksum
  // so the CRC is not what rejects it.
  ReportBatch empty;
  std::string frame = *EncodeReportBatch(empty);
  frame[8] = 0;
  frame[9] = 0;
  frame[10] = 0;
  frame[11] = static_cast<char>(0x80);
  auto decoded = DecodeReportBatch(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("reports"), std::string::npos);
}

TEST_F(WireMalformedTest, HeaderDeclaredPayloadOverFrameLimitRejected) {
  // A hostile 16-byte header claiming a ~4 GB payload must be rejected
  // at the header — before WireReader would size a buffer from it.
  std::string bad = *EncodeReportBatch(ReportBatch{});
  for (size_t i = 12; i < 16; ++i) bad[i] = static_cast<char>(0xFF);
  auto decoded = DecodeReportBatch(bad);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("frame limit"),
            std::string::npos);

  std::stringstream stream(bad);
  WireReader reader(&stream);
  ReportBatch got;
  bool done = false;
  EXPECT_FALSE(reader.Next(&got, &done).ok());
}

TEST(WireInvalidNgramTest, BoundsViolationsRejected) {
  // Hand-build payloads with a = 0, b < a, and b > trajectory_len by
  // encoding a valid report and patching it (then fixing the CRC via
  // re-framing is impossible — so craft via Encode of an invalid struct).
  for (int variant = 0; variant < 3; ++variant) {
    WireReport report;
    report.user_id = 1;
    report.epsilon_prime = 1.0;
    report.trajectory_len = 2;
    core::PerturbedNgram gram;
    switch (variant) {
      case 0:  // a = 0
        gram.a = 0;
        gram.b = 0;
        gram.regions = {5};
        break;
      case 1:  // b < a
        gram.a = 2;
        gram.b = 1;
        gram.regions = {5, 6};
        break;
      default:  // b > trajectory_len
        gram.a = 1;
        gram.b = 3;
        gram.regions = {5, 6, 7};
        break;
    }
    report.ngrams.push_back(gram);
    // Encode writes the struct as-is; Decode must reject it.
    const std::string frame = *EncodeReportBatch(ReportBatch{report});
    auto decoded = DecodeReportBatch(frame);
    EXPECT_FALSE(decoded.ok()) << "variant " << variant;
  }
}

// b < a makes the encoder's (b − a + 1) underflow enormous; the length
// guard must fire rather than the loop running away. Variant 1 above
// covers it via a correct-length region list; here the decoder sees a
// region list claim larger than the payload.
TEST(WireInvalidNgramTest, RegionListPastFrameRejected) {
  WireReport report;
  report.user_id = 1;
  report.epsilon_prime = 1.0;
  report.trajectory_len = 100;
  core::PerturbedNgram gram;
  gram.a = 1;
  gram.b = 50;
  gram.regions = {1, 2};  // far fewer than b − a + 1 = 50
  report.ngrams.push_back(gram);
  const std::string frame = *EncodeReportBatch(ReportBatch{report});
  EXPECT_FALSE(DecodeReportBatch(frame).ok());
}

// ---------- batch user range (the flags-gated v2 candidate) ----------

TEST(WireUserRangeTest, RoundTripsAndPeeksWithoutDecoding) {
  Rng rng(31);
  ReportBatch batch = RandomBatch(rng, 4, 100);
  batch[2].user_id = 250;  // widen the interval past the dense block
  WireEncodeOptions options;
  options.include_user_range = true;
  const std::string frame = *EncodeReportBatch(batch, options);

  auto info = PeekFrameHeader(frame);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_TRUE(info->has_user_range());
  EXPECT_EQ(info->frame_bytes, frame.size());

  // The routing peek needs only header + range prefix, not the payload.
  auto range = PeekUserRange(
      frame.substr(0, kWireHeaderBytes + kWireUserRangeBytes));
  ASSERT_TRUE(range.ok()) << range.status();
  ASSERT_TRUE(range->has_value());
  EXPECT_EQ((*range)->min_user_id, 100u);
  EXPECT_EQ((*range)->max_user_id, 251u);  // exclusive, tight

  auto decoded = DecodeReportBatch(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, batch);
}

TEST(WireUserRangeTest, UnflaggedFrameHasNoRange) {
  Rng rng(32);
  const std::string frame = *EncodeReportBatch(RandomBatch(rng, 2, 7));
  auto info = PeekFrameHeader(frame);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->has_user_range());
  auto range = PeekUserRange(frame);
  ASSERT_TRUE(range.ok()) << range.status();
  EXPECT_FALSE(range->has_value());
}

TEST(WireUserRangeTest, EmptyBatchDeclaresEmptyRange) {
  WireEncodeOptions options;
  options.include_user_range = true;
  const std::string frame = *EncodeReportBatch(ReportBatch{}, options);
  EXPECT_EQ(frame.size(),
            kWireHeaderBytes + kWireUserRangeBytes + kWireTrailerBytes);
  auto range = PeekUserRange(frame);
  ASSERT_TRUE(range.ok()) << range.status();
  ASSERT_TRUE(range->has_value());
  EXPECT_EQ((*range)->min_user_id, 0u);
  EXPECT_EQ((*range)->max_user_id, 0u);
  auto decoded = DecodeReportBatch(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->empty());
  // The empty interval is a subset of every shard range — an empty
  // keep-alive batch passes any server's membership check.
  EXPECT_TRUE((*range)->ContainedIn(WireUserRange{100, 200}));
  EXPECT_FALSE((WireUserRange{50, 60}.ContainedIn(WireUserRange{100, 200})));
  EXPECT_TRUE((WireUserRange{100, 150}.ContainedIn(WireUserRange{100, 200})));
}

// Re-checksums `frame` after a tamper so the CRC is not what rejects it.
void Rechecksum(std::string& frame) {
  const std::string_view payload(frame.data() + kWireHeaderBytes,
                                 frame.size() - kWireHeaderBytes -
                                     kWireTrailerBytes);
  const uint32_t crc = Crc32(payload);
  for (size_t i = 0; i < 4; ++i) {
    frame[frame.size() - 4 + i] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
}

TEST(WireUserRangeTest, ReportOutsideDeclaredRangeRejected) {
  Rng rng(33);
  WireEncodeOptions options;
  options.include_user_range = true;
  std::string frame = *EncodeReportBatch(RandomBatch(rng, 3, 20), options);
  // Shrink the declared max below the users actually present.
  for (size_t i = 0; i < 8; ++i) {
    frame[kWireHeaderBytes + 8 + i] = (i == 0) ? 21 : 0;  // max = 21
  }
  Rechecksum(frame);
  auto decoded = DecodeReportBatch(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("user range"),
            std::string::npos);
}

TEST(WireUserRangeTest, InvertedRangeRejected) {
  WireEncodeOptions options;
  options.include_user_range = true;
  std::string frame = *EncodeReportBatch(ReportBatch{}, options);
  frame[kWireHeaderBytes] = 9;  // min = 9 > max = 0
  Rechecksum(frame);
  EXPECT_FALSE(DecodeReportBatch(frame).ok());
  auto range = PeekUserRange(frame);
  EXPECT_FALSE(range.ok());
}

TEST(WireUserRangeTest, MaxUserIdRefusedAtEncodeNotWrapped) {
  // u64's last id has no exclusive upper bound; the encoder must fail
  // cleanly rather than emit a wrapped [min, 0) frame its own decoder
  // rejects as inverted.
  WireReport report;
  report.user_id = ~uint64_t{0};
  report.trajectory_len = 1;
  report.ngrams.push_back(core::PerturbedNgram{1, 1, {0}});
  WireEncodeOptions options;
  options.include_user_range = true;
  auto frame = EncodeReportBatch(ReportBatch{report}, options);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  // Without the range the same report still travels (round-trip test
  // PreservesExtremeFieldValues covers the decode).
  EXPECT_TRUE(EncodeReportBatch(ReportBatch{report}).ok());
}

TEST(WireUserRangeTest, FlaggedFrameWithoutRoomForRangeRejected) {
  // A flagged header whose payload cannot hold the 16-byte prefix must
  // fail at the header, before any payload read.
  std::string frame = *EncodeReportBatch(ReportBatch{});
  frame[6] = 1;  // set the user-range flag; payload_bytes stays 0
  auto info = PeekFrameHeader(frame);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kInvalidArgument);
}

// ---------- sequence identity and acks (wire v3) ----------

TEST(WireSequenceTest, RoundTripsAndPeeksWithoutDecoding) {
  Rng rng(41);
  const ReportBatch batch = RandomBatch(rng, 3, 60);
  WireEncodeOptions options;
  options.sequence = WireSequence{.stream_id = 7, .seq = 42};
  const std::string frame = *EncodeReportBatch(batch, options);

  auto info = PeekFrameHeader(frame);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_TRUE(info->has_sequence());

  // The dedup peek needs only header + sequence prefix, not the payload.
  auto sequence =
      PeekSequence(frame.substr(0, kWireHeaderBytes + kWireSequenceBytes));
  ASSERT_TRUE(sequence.ok()) << sequence.status();
  ASSERT_TRUE(sequence->has_value());
  EXPECT_EQ((*sequence)->stream_id, 7u);
  EXPECT_EQ((*sequence)->seq, 42u);

  auto decoded = DecodeReportBatch(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, batch);
}

TEST(WireSequenceTest, ComposesWithUserRangePrefixInOrder) {
  Rng rng(43);
  const ReportBatch batch = RandomBatch(rng, 2, 10);
  WireEncodeOptions options;
  options.include_user_range = true;
  options.sequence = WireSequence{.stream_id = 1, .seq = 1};
  const std::string frame = *EncodeReportBatch(batch, options);

  // Sequence sits first at its fixed offset; the range follows it, and
  // both peeks find their field with the other flag present.
  auto sequence = PeekSequence(frame);
  ASSERT_TRUE(sequence.ok()) << sequence.status();
  ASSERT_TRUE(sequence->has_value());
  EXPECT_EQ((*sequence)->seq, 1u);
  auto range = PeekUserRange(frame);
  ASSERT_TRUE(range.ok()) << range.status();
  ASSERT_TRUE(range->has_value());
  EXPECT_EQ((*range)->min_user_id, 10u);

  auto decoded = DecodeReportBatch(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, batch);
}

TEST(WireSequenceTest, UnsequencedFrameHasNoSequence) {
  Rng rng(44);
  const std::string frame = *EncodeReportBatch(RandomBatch(rng, 2, 7));
  auto info = PeekFrameHeader(frame);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->has_sequence());
  auto sequence = PeekSequence(frame);
  ASSERT_TRUE(sequence.ok()) << sequence.status();
  EXPECT_FALSE(sequence->has_value());
}

TEST(WireSequenceTest, ZeroSeqRefusedAtEncodeAndDecode) {
  // seq 0 is reserved ("nothing acked yet"); a frame claiming it would
  // confuse every dedup map downstream, so both directions reject it.
  WireEncodeOptions options;
  options.sequence = WireSequence{.stream_id = 3, .seq = 0};
  EXPECT_FALSE(EncodeReportBatch(ReportBatch{}, options).ok());

  options.sequence->seq = 5;
  std::string frame = *EncodeReportBatch(ReportBatch{}, options);
  for (size_t i = 0; i < 8; ++i) {
    frame[kWireHeaderBytes + 8 + i] = 0;  // stamp seq = 0 on the wire
  }
  Rechecksum(frame);
  EXPECT_FALSE(DecodeReportBatch(frame).ok());
  EXPECT_FALSE(PeekSequence(frame).ok());
}

TEST(WireSequenceTest, FlaggedFrameWithoutRoomForSequenceRejected) {
  std::string frame = *EncodeReportBatch(ReportBatch{});
  frame[6] = 2;  // set the sequence flag; payload_bytes stays 0
  auto info = PeekFrameHeader(frame);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireAckTest, RoundTrips) {
  const std::string frame = EncodeAckFrame(123456789);
  EXPECT_EQ(frame.size(), kAckFrameBytes);
  auto ack = DecodeAckFrame(frame);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(*ack, 123456789u);
  // ack_seq 0 is a valid ack: "nothing durable yet".
  EXPECT_EQ(*DecodeAckFrame(EncodeAckFrame(0)), 0u);
  EXPECT_EQ(*DecodeAckFrame(EncodeAckFrame(~uint64_t{0})), ~uint64_t{0});
}

TEST(WireAckTest, EveryCorruptedByteRejected) {
  // Magic guards bytes [0,4), the CRC covers [4,16), and the CRC field
  // itself must match — so no single flipped byte can pass.
  const std::string good = EncodeAckFrame(42);
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    EXPECT_FALSE(DecodeAckFrame(bad).ok()) << "byte " << i;
  }
  EXPECT_FALSE(DecodeAckFrame(good.substr(0, good.size() - 1)).ok());
  EXPECT_FALSE(DecodeAckFrame(good + 'x').ok());
}

// ---------- streams and files ----------

TEST(WireStreamTest, MultiFrameStreamRoundTrips) {
  Rng rng(11);
  std::vector<ReportBatch> batches;
  for (size_t i = 0; i < 5; ++i) {
    batches.push_back(RandomBatch(rng, 1 + i, i * 100));
  }

  std::stringstream stream;
  WireWriter writer(&stream);
  for (const auto& batch : batches) {
    ASSERT_TRUE(writer.WriteBatch(batch).ok());
  }
  EXPECT_EQ(writer.batches_written(), batches.size());

  WireReader reader(&stream);
  for (size_t i = 0; i < batches.size(); ++i) {
    ReportBatch got;
    bool done = false;
    ASSERT_TRUE(reader.Next(&got, &done).ok()) << "batch " << i;
    ASSERT_FALSE(done) << "batch " << i;
    EXPECT_EQ(got, batches[i]) << "batch " << i;
  }
  ReportBatch got;
  bool done = false;
  ASSERT_TRUE(reader.Next(&got, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(reader.batches_read(), batches.size());
}

TEST(WireStreamTest, StreamCutInsideFrameIsCorruptionNotEof) {
  Rng rng(13);
  const std::string frame = *EncodeReportBatch(RandomBatch(rng, 2, 0));
  std::stringstream cut(frame.substr(0, frame.size() - 2));
  WireReader reader(&cut);
  ReportBatch got;
  bool done = false;
  auto status = reader.Next(&got, &done);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(done);
}

TEST(WireStreamTest, RawFrameReaderReturnsVerbatimFrames) {
  Rng rng(19);
  std::vector<std::string> frames;
  std::stringstream stream;
  WireEncodeOptions ranged;
  ranged.include_user_range = true;
  for (size_t i = 0; i < 4; ++i) {
    // Mix flagged and unflagged frames in one stream.
    auto frame = EncodeReportBatch(RandomBatch(rng, 1 + i, i * 50),
                                   i % 2 ? ranged : WireEncodeOptions{});
    ASSERT_TRUE(frame.ok());
    stream << *frame;
    frames.push_back(std::move(*frame));
  }

  RawFrameReader reader(&stream);
  for (size_t i = 0; i < frames.size(); ++i) {
    std::string frame;
    bool done = false;
    ASSERT_TRUE(reader.Next(&frame, &done).ok()) << "frame " << i;
    ASSERT_FALSE(done);
    EXPECT_EQ(frame, frames[i]) << "frame " << i;  // byte-for-byte
  }
  std::string frame;
  bool done = false;
  ASSERT_TRUE(reader.Next(&frame, &done).ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(reader.frames_read(), frames.size());
}

TEST(WireStreamTest, RawFrameReaderRejectsCutAndGarbage) {
  Rng rng(23);
  const std::string good = *EncodeReportBatch(RandomBatch(rng, 2, 0));
  {
    std::stringstream cut(good.substr(0, good.size() - 1));
    RawFrameReader reader(&cut);
    std::string frame;
    bool done = false;
    EXPECT_FALSE(reader.Next(&frame, &done).ok());
    EXPECT_FALSE(done);
  }
  {
    std::stringstream garbage("this is not a TLWB stream at all!");
    RawFrameReader reader(&garbage);
    std::string frame;
    bool done = false;
    auto status = reader.Next(&frame, &done);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("magic"), std::string::npos);
  }
}

TEST(WireFileTest, WriteReadRoundTrip) {
  Rng rng(17);
  std::vector<ReportBatch> batches;
  for (size_t i = 0; i < 3; ++i) {
    batches.push_back(RandomBatch(rng, 4, i * 10));
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "trajldp_wire_test.bin")
          .string();
  ASSERT_TRUE(WriteReportBatches(path, batches).ok());
  auto read = ReadReportBatches(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, batches);
  std::remove(path.c_str());
}

TEST(WireFileTest, MissingFileIsCleanError) {
  auto read = ReadReportBatches("/nonexistent/trajldp_nope.bin");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace trajldp::io
