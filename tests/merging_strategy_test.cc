#include <gtest/gtest.h>

#include <algorithm>

#include "core/mechanism.h"
#include "model/semantic_distance.h"
#include "region/decomposition.h"
#include "region/merging.h"
#include "test_world.h"

namespace trajldp::region {
namespace {

using trajldp::testing::GridWorldOptions;
using trajldp::testing::MakeGridWorld;

model::TimeDomain TenMinutes() { return *model::TimeDomain::Create(10); }

DecompositionConfig ConfigWith(MergeStrategy strategy, size_t kappa) {
  DecompositionConfig config;
  config.merge.kappa = kappa;
  config.merge.strategy = strategy;
  return config;
}

// A sparse world: every (cell, hour, category) group is tiny, so merging
// strategy matters.
StatusOr<model::PoiDatabase> SparseWorld() {
  GridWorldOptions options;
  options.rows = 6;
  options.cols = 6;
  options.spacing_km = 1.5;
  return MakeGridWorld(options);
}

TEST(MergeStrategyTest, RoundRobinKeepsResolutionInEveryDimension) {
  auto db = SparseWorld();
  ASSERT_TRUE(db.ok());
  // κ = 4 is reachable after one coarsening cycle (2×2-coarser cells with
  // level-2 categories hold 4–6 POIs), so round robin should stop there
  // instead of flattening space completely.
  auto decomp = StcDecomposition::Build(
      &*db, TenMinutes(), ConfigWith(MergeStrategy::kRoundRobin, 4));
  ASSERT_TRUE(decomp.ok());

  // Round robin must not collapse space to the coarsest grid wholesale:
  // some merged (>= 2 POI) regions should keep space level <= 1 while
  // having lifted time or category instead.
  bool kept_space_with_other_lift = false;
  for (const StcRegion& r : decomp->regions()) {
    if (r.pois.size() < 2) continue;
    const bool lifted_other =
        r.time.length() > 60 ||
        db->categories().level(r.category) < 3;
    if (r.space_level <= 1 && lifted_other) {
      kept_space_with_other_lift = true;
      break;
    }
  }
  EXPECT_TRUE(kept_space_with_other_lift);
}

TEST(MergeStrategyTest, DimensionAtATimeExhaustsSpaceFirst) {
  auto db = SparseWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(
      &*db, TenMinutes(), ConfigWith(MergeStrategy::kDimensionAtATime, 8));
  ASSERT_TRUE(decomp.ok());

  // With space first and exhausted first, merged regions should have hit
  // the coarsest grid before time/category lifted much: every region that
  // lifted time or category must already sit at the coarsest space level.
  for (const StcRegion& r : decomp->regions()) {
    const bool lifted_other =
        r.time.length() > 60 || db->categories().level(r.category) < 3;
    if (lifted_other) {
      EXPECT_EQ(r.space_level, 2) << r.DebugString();
    }
  }
}

TEST(MergeStrategyTest, BothStrategiesCoverEveryAssignment) {
  auto db = SparseWorld();
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  for (MergeStrategy strategy :
       {MergeStrategy::kRoundRobin, MergeStrategy::kDimensionAtATime}) {
    auto decomp =
        StcDecomposition::Build(&*db, time, ConfigWith(strategy, 8));
    ASSERT_TRUE(decomp.ok());
    for (model::PoiId poi = 0; poi < db->size(); ++poi) {
      EXPECT_TRUE(decomp->Lookup(poi, 72).ok());
    }
  }
}

TEST(MergeStrategyTest, RoundRobinProducesAtLeastAsManyRegions) {
  // Round robin merges more conservatively per step, so it should never
  // produce fewer regions than exhausting dimensions outright... the
  // reverse can happen in principle, so assert the weaker invariant that
  // both reach similar kappa coverage.
  auto db = SparseWorld();
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  auto rr = StcDecomposition::Build(&*db, time,
                                    ConfigWith(MergeStrategy::kRoundRobin, 8));
  auto daat = StcDecomposition::Build(
      &*db, time, ConfigWith(MergeStrategy::kDimensionAtATime, 8));
  ASSERT_TRUE(rr.ok());
  ASSERT_TRUE(daat.ok());
  EXPECT_GT(rr->num_regions(), 0u);
  EXPECT_GT(daat->num_regions(), 0u);
  EXPECT_NEAR(rr->FractionAtKappa(), daat->FractionAtKappa(), 0.5);
}

// ---------- quality_sensitivity plumbing ----------

TEST(QualitySensitivityTest, OverrideSharpensConcentration) {
  trajldp::testing::GridWorldOptions options;
  options.rows = 5;
  options.cols = 5;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  auto build = [&](double sensitivity) {
    core::NGramConfig config;
    config.epsilon = 5.0;
    config.reachability.speed_kmh = 8.0;
    config.reachability.reference_gap_minutes = 60;
    config.quality_sensitivity = sensitivity;
    return core::NGramMechanism::Build(&*db, time, config);
  };
  auto strict = build(0.0);
  auto calibrated = build(1.0);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(calibrated.ok());
  // Strict sensitivity: n × diameter; calibrated: exactly 1.
  EXPECT_DOUBLE_EQ(calibrated->domain().Sensitivity(2), 1.0);
  EXPECT_DOUBLE_EQ(strict->domain().Sensitivity(2),
                   2.0 * strict->distance().MaxDistance());
  EXPECT_GT(strict->domain().Sensitivity(2), 1.0);

  // Calibrated outputs track the input much more closely on average.
  const model::SemanticDistance dist(&*db, time);
  model::Trajectory input;
  input.Append(0, 54);
  input.Append(6, 60);
  input.Append(12, 72);
  double err_strict = 0.0, err_calibrated = 0.0;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng r1(seed), r2(seed);
    auto a = strict->Perturb(input, r1);
    auto b = calibrated->Perturb(input, r2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    err_strict += dist.BetweenTrajectories(input, *a);
    err_calibrated += dist.BetweenTrajectories(input, *b);
  }
  EXPECT_LT(err_calibrated, err_strict);
}

}  // namespace
}  // namespace trajldp::region
