#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "eval/dataset.h"
#include "io/csv.h"
#include "io/dataset_io.h"
#include "test_world.h"

namespace trajldp::io {
namespace {

using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

// ---------- CSV core ----------

TEST(CsvTest, WriterEscapesSpecialFields) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"plain", "has,comma"});
  csv.AddRow({"has\"quote", "has\nnewline"});
  const std::string text = csv.ToString();
  EXPECT_EQ(text,
            "a,b\n"
            "plain,\"has,comma\"\n"
            "\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvTest, ParseRoundTripsEscapes) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"v,1", "line1\nline2"});
  csv.AddRow({"quote\"inside", ""});
  auto table = ParseCsv(csv.ToString());
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0][0], "v,1");
  EXPECT_EQ(table->rows[0][1], "line1\nline2");
  EXPECT_EQ(table->rows[1][0], "quote\"inside");
  EXPECT_EQ(table->rows[1][1], "");
}

TEST(CsvTest, ParseHandlesCrlfAndMissingTrailingNewline) {
  auto table = ParseCsv("h1,h2\r\n1,2\r\n3,4");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "4");
}

TEST(CsvTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("a,b\n\"unterminated").ok());
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());  // ragged row
}

TEST(CsvTest, ColumnLookup) {
  auto table = ParseCsv("alpha,beta\n1,2\n");
  ASSERT_TRUE(table.ok());
  auto beta = table->Column("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(*beta, 1u);
  EXPECT_FALSE(table->Column("gamma").ok());
}

// ---------- Category / POI round trips ----------

TEST(DatasetIoTest, CategoryTreeRoundTrips) {
  const hierarchy::CategoryTree tree = trajldp::testing::MakeSmallTree();
  auto parsed = CategoriesFromCsv(CategoriesToCsv(tree));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_nodes(), tree.num_nodes());
  for (hierarchy::CategoryId id = 0; id < tree.num_nodes(); ++id) {
    EXPECT_EQ(parsed->name(id), tree.name(id));
    EXPECT_EQ(parsed->parent(id), tree.parent(id));
    EXPECT_EQ(parsed->level(id), tree.level(id));
  }
}

TEST(DatasetIoTest, PoiDatabaseRoundTrips) {
  trajldp::testing::GridWorldOptions options;
  options.restrict_odd_hours = true;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());

  auto parsed = PoiDatabaseFromCsv(PoisToCsv(*db),
                                   CategoriesToCsv(db->categories()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), db->size());
  for (model::PoiId i = 0; i < db->size(); ++i) {
    EXPECT_EQ(parsed->poi(i).name, db->poi(i).name);
    EXPECT_NEAR(parsed->poi(i).location.lat, db->poi(i).location.lat, 1e-7);
    EXPECT_NEAR(parsed->poi(i).location.lon, db->poi(i).location.lon, 1e-7);
    EXPECT_EQ(parsed->poi(i).category, db->poi(i).category);
    EXPECT_NEAR(parsed->poi(i).popularity, db->poi(i).popularity, 1e-7);
    EXPECT_EQ(parsed->poi(i).hours.OpenMinutesPerDay(),
              db->poi(i).hours.OpenMinutesPerDay());
  }
}

TEST(DatasetIoTest, WrapAroundHoursRoundTrip) {
  hierarchy::CategoryTree tree = trajldp::testing::MakeSmallTree();
  model::Poi bar;
  bar.name = "bar";
  bar.location = {40.7, -74.0};
  bar.category = tree.Leaves()[0];
  bar.hours = model::OpeningHours::Daily(18 * 60, 2 * 60);
  auto db = model::PoiDatabase::Create({bar}, std::move(tree));
  ASSERT_TRUE(db.ok());
  auto parsed = PoiDatabaseFromCsv(PoisToCsv(*db),
                                   CategoriesToCsv(db->categories()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->poi(0).hours.IsOpenAtMinute(23 * 60));
  EXPECT_TRUE(parsed->poi(0).hours.IsOpenAtMinute(60));
  EXPECT_FALSE(parsed->poi(0).hours.IsOpenAtMinute(12 * 60));
}

// ---------- Trajectory round trips ----------

TEST(DatasetIoTest, TrajectoriesRoundTrip) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  model::TrajectorySet set = {MakeTrajectory({{0, 10}, {1, 20}}),
                              MakeTrajectory({{5, 30}, {6, 40}, {7, 50}})};
  auto parsed = TrajectoriesFromCsv(TrajectoriesToCsv(set), *db, time);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], set[0]);
  EXPECT_EQ((*parsed)[1], set[1]);
}

TEST(DatasetIoTest, TrajectoriesRejectBadReferences) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  // Unknown POI id.
  EXPECT_FALSE(TrajectoriesFromCsv("user_id,poi_id,timestep\n0,999,10\n",
                                   *db, time)
                   .ok());
  // Times not increasing within a user.
  EXPECT_FALSE(TrajectoriesFromCsv(
                   "user_id,poi_id,timestep\n0,1,20\n0,2,10\n", *db, time)
                   .ok());
  // Users out of order.
  EXPECT_FALSE(TrajectoriesFromCsv(
                   "user_id,poi_id,timestep\n1,1,10\n0,2,20\n", *db, time)
                   .ok());
}

// ---------- File-level round trip ----------

TEST(DatasetIoTest, FileRoundTripThroughRealGenerator) {
  eval::DatasetOptions options;
  options.num_pois = 120;
  options.num_trajectories = 15;
  auto dataset = eval::MakeTaxiFoursquareDataset(options);
  ASSERT_TRUE(dataset.ok());

  const auto dir = std::filesystem::temp_directory_path();
  const std::string poi_path = (dir / "trajldp_pois.csv").string();
  const std::string cat_path = (dir / "trajldp_cats.csv").string();
  const std::string traj_path = (dir / "trajldp_trajs.csv").string();

  ASSERT_TRUE(WritePoiDatabase(dataset->db, poi_path, cat_path).ok());
  ASSERT_TRUE(WriteTrajectories(dataset->trajectories, traj_path).ok());

  auto db = ReadPoiDatabase(poi_path, cat_path);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->size(), dataset->db.size());
  auto trajectories = ReadTrajectories(traj_path, *db, dataset->time);
  ASSERT_TRUE(trajectories.ok()) << trajectories.status();
  ASSERT_EQ(trajectories->size(), dataset->trajectories.size());
  for (size_t i = 0; i < trajectories->size(); ++i) {
    EXPECT_EQ((*trajectories)[i], dataset->trajectories[i]);
  }

  std::remove(poi_path.c_str());
  std::remove(cat_path.c_str());
  std::remove(traj_path.c_str());
}

TEST(DatasetIoTest, MissingFilesReportNotFound) {
  auto db = ReadPoiDatabase("/nonexistent/p.csv", "/nonexistent/c.csv");
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace trajldp::io
