// The reactor ingest suite: unit tests for the epoll building blocks
// (ConnectionState reassembly, Reactor loop, ReleaseWatermarks) and the
// system-level properties the reactor redesign must preserve —
// connection churn at scale, sequenced and raw-v1 clients mixed on one
// multi-reactor server with bit-identical merged output, and fd
// exhaustion at accept time degrading to backoff instead of a hot spin
// or a permanently deaf listener.

#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/event_fds.h"
#include "common/rng.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/shard_plan.h"
#include "core/streaming_collector.h"
#include "io/wire.h"
#include "net/connection_state.h"
#include "net/ingest_server.h"
#include "net/reactor.h"
#include "net/report_client.h"
#include "net/socket.h"
#include "test_world.h"

namespace trajldp::net {
namespace {

using core::FullRelease;
using core::StreamingCollector;
using core::UserRelease;
using trajldp::testing::MakeGridWorld;

bool WaitFor(const std::function<bool()>& condition,
             std::chrono::seconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ---------- ConnectionState: the per-connection reassembly machine ----

/// A non-blocking AF_UNIX socketpair: `state` wraps one end, the test
/// drives the other. Exactly the situation a reactor puts the machine
/// in — reads return short counts and EAGAIN at the kernel's whim.
struct StatePair {
  StatePair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    EXPECT_TRUE(SetNonBlocking(fds[0]).ok());
    EXPECT_TRUE(SetNonBlocking(fds[1]).ok());
    state = std::make_unique<ConnectionState>(Socket(fds[0]));
    driver = Socket(fds[1]);
  }
  void Feed(std::string_view bytes) {
    ASSERT_EQ(::send(driver.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  std::unique_ptr<ConnectionState> state;
  Socket driver;
};

std::string OneFrame() {
  auto frame = io::EncodeReportBatch(io::ReportBatch{});
  EXPECT_TRUE(frame.ok()) << frame.status();
  return *frame;
}

TEST(ConnectionStateTest, ReassemblesAFrameFedOneByteAtATime) {
  StatePair pair;
  const std::string frame = OneFrame();
  // Nothing buffered yet: the machine reports would-block, not EOF.
  auto idle = pair.state->PumpRead();
  ASSERT_TRUE(idle.ok()) << idle.status();
  EXPECT_EQ(*idle, ConnectionState::ReadEvent::kWouldBlock);
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    pair.Feed(std::string_view(frame.data() + i, 1));
    auto event = pair.state->PumpRead();
    ASSERT_TRUE(event.ok()) << "byte " << i << ": " << event.status();
    ASSERT_EQ(*event, ConnectionState::ReadEvent::kWouldBlock) << "byte " << i;
  }
  pair.Feed(std::string_view(frame.data() + frame.size() - 1, 1));
  auto event = pair.state->PumpRead();
  ASSERT_TRUE(event.ok()) << event.status();
  ASSERT_EQ(*event, ConnectionState::ReadEvent::kFrameReady);
  EXPECT_EQ(pair.state->TakeFrame(), frame);
  // The machine reset: a second identical frame reassembles the same way.
  pair.Feed(frame);
  event = pair.state->PumpRead();
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(*event, ConnectionState::ReadEvent::kFrameReady);
  EXPECT_EQ(pair.state->TakeFrame(), frame);
}

TEST(ConnectionStateTest, BackToBackFramesInOneBufferBothSurface) {
  StatePair pair;
  const std::string frame = OneFrame();
  pair.Feed(frame + frame);
  for (int i = 0; i < 2; ++i) {
    auto event = pair.state->PumpRead();
    ASSERT_TRUE(event.ok()) << event.status();
    ASSERT_EQ(*event, ConnectionState::ReadEvent::kFrameReady) << i;
    EXPECT_EQ(pair.state->TakeFrame(), frame) << i;
  }
}

TEST(ConnectionStateTest, HostileHeaderRejectedWithoutSizingABuffer) {
  StatePair pair;
  pair.Feed(std::string(16, 'Z'));  // garbage where "TLWB" should be
  auto event = pair.state->PumpRead();
  ASSERT_FALSE(event.ok());
  EXPECT_NE(event.status().message().find("magic"), std::string::npos)
      << event.status();
}

TEST(ConnectionStateTest, OversizedDeclaredLengthRejectedAtTheHeader) {
  StatePair pair;
  std::string header = OneFrame().substr(0, 16);
  // Declare a ~4 GiB payload: the limit gate must fire from the header
  // alone, before any buffer is sized to the hostile length.
  for (int i = 12; i < 16; ++i) header[i] = static_cast<char>(0xFF);
  pair.Feed(header);
  auto event = pair.state->PumpRead();
  ASSERT_FALSE(event.ok());
  EXPECT_NE(event.status().message().find("frame limit"), std::string::npos)
      << event.status();
}

TEST(ConnectionStateTest, PeerVanishingMidFrameIsTruncationNotEof) {
  StatePair pair;
  const std::string frame = OneFrame();
  pair.Feed(frame.substr(0, frame.size() - 3));
  while (true) {
    auto event = pair.state->PumpRead();
    ASSERT_TRUE(event.ok()) << event.status();
    if (*event == ConnectionState::ReadEvent::kWouldBlock) break;
  }
  pair.driver.Close();
  auto event = pair.state->PumpRead();
  ASSERT_FALSE(event.ok());
  EXPECT_NE(event.status().message().find("truncated"), std::string::npos)
      << event.status();
}

TEST(ConnectionStateTest, CleanFinOnAFrameBoundaryIsPeerClosed) {
  StatePair pair;
  const std::string frame = OneFrame();
  pair.Feed(frame);
  pair.driver.Close();
  auto event = pair.state->PumpRead();
  ASSERT_TRUE(event.ok());
  ASSERT_EQ(*event, ConnectionState::ReadEvent::kFrameReady);
  (void)pair.state->TakeFrame();
  event = pair.state->PumpRead();
  ASSERT_TRUE(event.ok()) << event.status();
  EXPECT_EQ(*event, ConnectionState::ReadEvent::kPeerClosed);
}

TEST(ConnectionStateTest, QueuedWritesDrainAndReportCompletion) {
  StatePair pair;
  EXPECT_FALSE(pair.state->wants_write());
  pair.state->QueueWrite("ack-bytes");
  EXPECT_TRUE(pair.state->wants_write());
  auto drained = pair.state->PumpWrite();
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_TRUE(*drained);
  EXPECT_FALSE(pair.state->wants_write());
  char buffer[16] = {};
  ASSERT_EQ(::recv(pair.driver.fd(), buffer, sizeof(buffer), 0), 9);
  EXPECT_EQ(std::string_view(buffer, 9), "ack-bytes");
}

TEST(ConnectionStateTest, FullSocketBufferLeavesWritePending) {
  StatePair pair;
  // Queue far more than the socketpair buffers: PumpWrite must stop at
  // EAGAIN with the remainder pending, then finish once the peer drains.
  const std::string big(1u << 22, 'w');
  pair.state->QueueWrite(big);
  auto drained = pair.state->PumpWrite();
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_FALSE(*drained);
  EXPECT_TRUE(pair.state->wants_write());
  size_t received = 0;
  std::vector<char> buffer(1u << 16);
  while (received < big.size()) {
    const ssize_t n =
        ::recv(pair.driver.fd(), buffer.data(), buffer.size(), 0);
    if (n > 0) {
      received += static_cast<size_t>(n);
      continue;
    }
    ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK) << strerror(errno);
    auto more = pair.state->PumpWrite();
    ASSERT_TRUE(more.ok()) << more.status();
    if (*more) {
      // Drained from the writer's side; pull the tail out of the socket.
      continue;
    }
  }
  EXPECT_EQ(received, big.size());
}

// ---------- Reactor: the epoll loop itself ----------

TEST(ReactorTest, DispatchesReadinessAndPostedClosures) {
  Reactor reactor;
  ASSERT_TRUE(reactor.Start("test-loop").ok());
  WakeupFd ready;
  ASSERT_TRUE(ready.Open().ok());
  std::atomic<int> fired{0};
  std::atomic<bool> posted{false};
  reactor.Post([&] {
    ASSERT_TRUE(reactor
                    .Add(ready.fd(), EPOLLIN,
                         [&](uint32_t) {
                           ready.Drain();
                           fired.fetch_add(1);
                         })
                    .ok());
    posted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return posted.load(); }));
  ready.Signal();
  ASSERT_TRUE(WaitFor([&] { return fired.load() >= 1; }));
  // Del from the loop thread; further signals must not dispatch.
  std::atomic<bool> deleted{false};
  reactor.Post([&] {
    reactor.Del(ready.fd());
    deleted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return deleted.load(); }));
  const int count = fired.load();
  ready.Signal();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fired.load(), count);
  reactor.Stop();
}

TEST(ReactorTest, HandlerMayDeleteItsOwnFd) {
  Reactor reactor;
  ASSERT_TRUE(reactor.Start("self-del").ok());
  WakeupFd ready;
  ASSERT_TRUE(ready.Open().ok());
  std::atomic<int> fired{0};
  std::atomic<bool> registered{false};
  reactor.Post([&] {
    ASSERT_TRUE(reactor
                    .Add(ready.fd(), EPOLLIN,
                         [&](uint32_t) {
                           ready.Drain();
                           fired.fetch_add(1);
                           // The hazard the loop must survive: the
                           // handler erases itself mid-dispatch.
                           reactor.Del(ready.fd());
                         })
                    .ok());
    registered.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return registered.load(); }));
  ready.Signal();
  ASSERT_TRUE(WaitFor([&] { return fired.load() == 1; }));
  ready.Signal();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fired.load(), 1);
  reactor.Stop();
}

TEST(ReactorTest, StopIsIdempotentAndJoins) {
  Reactor reactor;
  ASSERT_TRUE(reactor.Start().ok());
  EXPECT_TRUE(reactor.running());
  reactor.Stop();
  EXPECT_FALSE(reactor.running());
  reactor.Stop();  // second stop is a no-op, not a crash
}

// ---------- ReleaseWatermarks: racy completions -> contiguous floor ---

TEST(ReleaseWatermarksTest, OutOfOrderCompletionsAdvanceOnlyTheFloor) {
  ReleaseWatermarks marks;
  EXPECT_TRUE(marks.Snapshot().empty());
  marks.Note(1, 2);  // above the gap: parked, floor stays 0
  EXPECT_TRUE(marks.Snapshot().empty());
  marks.Note(1, 1);  // fills the gap: floor jumps across the parked run
  auto snapshot = marks.Snapshot();
  ASSERT_EQ(snapshot.count(1), 1u);
  EXPECT_EQ(snapshot[1], 2u);
  marks.Note(1, 5);
  marks.Note(1, 4);
  EXPECT_EQ(marks.Snapshot()[1], 2u);  // 3 still missing
  marks.Note(1, 3);
  EXPECT_EQ(marks.Snapshot()[1], 5u);
  // Streams are independent.
  marks.Note(9, 1);
  snapshot = marks.Snapshot();
  EXPECT_EQ(snapshot[1], 5u);
  EXPECT_EQ(snapshot[9], 1u);
}

// ---------- system level: churn, mixed modes, fd exhaustion ----------

class ReactorIngestFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 15;
    options.cols = 15;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    core::NGramConfig config;
    config.n = 2;
    config.epsilon = 5.0;
    config.decomposition.grid_size = 5;
    config.decomposition.coarse_grids = {1};
    config.decomposition.base_interval_minutes = 720;
    config.decomposition.merge.kappa = 1;
    config.reachability.speed_kmh = 30.0;
    config.reachability.reference_gap_minutes = 60;
    auto mech = core::NGramMechanism::Build(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok()) << mech.status();
    mech_ = std::make_unique<core::NGramMechanism>(std::move(*mech));
  }

  std::vector<region::RegionTrajectory> MakeUsers(size_t count,
                                                  uint64_t seed) const {
    const auto num_regions =
        static_cast<uint64_t>(mech_->decomposition().num_regions());
    Rng rng(seed);
    std::vector<region::RegionTrajectory> users(count);
    for (auto& tau : users) {
      const size_t len = 2 + static_cast<size_t>(rng.UniformUint64(4));
      for (size_t i = 0; i < len; ++i) {
        tau.push_back(
            static_cast<region::RegionId>(rng.UniformUint64(num_regions)));
      }
    }
    return users;
  }

  io::ReportBatch MakeReports(
      const std::vector<region::RegionTrajectory>& users, uint64_t seed) {
    core::BatchReleaseEngine engine(&mech_->perturber(),
                                    core::BatchReleaseEngine::Config{2});
    auto perturbed = engine.ReleaseAll(users, seed);
    EXPECT_TRUE(perturbed.ok()) << perturbed.status();
    return MakeWireReports(users, std::move(*perturbed), mech_->perturber());
  }

  std::vector<FullRelease> Reference(
      const std::vector<region::RegionTrajectory>& users, uint64_t seed) {
    core::BatchReleaseEngine engine(mech_.get(),
                                    core::BatchReleaseEngine::Config{2});
    auto reference = engine.ReleaseAllFull(users, seed);
    EXPECT_TRUE(reference.ok()) << reference.status();
    return std::move(*reference);
  }

  struct Shard {
    std::vector<UserRelease> out;
    std::unique_ptr<StreamingCollector> collector;
    std::unique_ptr<IngestServer> server;
  };

  std::unique_ptr<Shard> StartShard(uint64_t seed,
                                    IngestServer::Options options = {},
                                    StreamingCollector::Config config = {}) {
    auto shard = std::make_unique<Shard>();
    Shard* raw = shard.get();
    shard->collector = std::make_unique<StreamingCollector>(
        mech_.get(), seed,
        [raw](UserRelease release) { raw->out.push_back(std::move(release)); },
        config);
    auto server = IngestServer::Start(shard->collector.get(), options);
    EXPECT_TRUE(server.ok()) << server.status();
    if (!server.ok()) return nullptr;
    shard->server = std::move(*server);
    return shard;
  }

  void FinishAndVerify(Shard* shard,
                       const std::vector<FullRelease>& reference) {
    ASSERT_TRUE(WaitFor([&] {
      return shard->collector->reports_released() == reference.size();
    }));
    shard->server->Shutdown();
    ASSERT_TRUE(shard->collector->Finish().ok());
    std::vector<std::vector<UserRelease>> outputs;
    outputs.push_back(std::move(shard->out));
    auto merged =
        core::MergeShardReleases(std::move(outputs), reference.size());
    ASSERT_TRUE(merged.ok()) << merged.status();
    ASSERT_EQ(merged->size(), reference.size());
    for (size_t i = 0; i < merged->size(); ++i) {
      EXPECT_EQ((*merged)[i].regions, reference[i].regions) << "user " << i;
      EXPECT_EQ((*merged)[i].trajectory, reference[i].trajectory)
          << "user " << i;
      EXPECT_EQ((*merged)[i].poi_attempts, reference[i].poi_attempts)
          << "user " << i;
      EXPECT_EQ((*merged)[i].smoothed, reference[i].smoothed) << "user " << i;
    }
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<core::NGramMechanism> mech_;
};

TEST_F(ReactorIngestFixture, MixedSequencedAndRawClientsOnMultiReactorServer) {
  // The equivalence property the rewrite must keep: one server, several
  // reactor threads, sequenced streams and legacy raw-v1 clients
  // interleaved — and the merged output is still bit-identical to the
  // in-process engine. Thirds: raw, sequenced, sequenced-with-reconnects.
  const uint64_t seed = 20260808;
  const auto users = MakeUsers(36, 21);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  IngestServer::Options options;
  options.reactor_threads = 3;
  auto shard = StartShard(seed, options);
  ASSERT_NE(shard, nullptr);
  const uint16_t port = shard->server->port();

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // raw v1: unsequenced frames, no acks
    ReportClient client("127.0.0.1", port);
    for (size_t i = 0; i < 12; i += 3) {
      ASSERT_TRUE(client
                      .SendBatch(std::span<const io::WireReport>(
                          reports.data() + i, 3))
                      .ok());
    }
    client.Close();
  });
  threads.emplace_back([&] {  // sequenced, one long-lived connection
    ReportClient::Options copts;
    copts.enable_sequencing = true;
    copts.stream_id = 1;
    ReportClient client("127.0.0.1", port, copts);
    for (size_t i = 12; i < 24; i += 3) {
      ASSERT_TRUE(client
                      .SendBatch(std::span<const io::WireReport>(
                          reports.data() + i, 3))
                      .ok());
    }
    ASSERT_TRUE(client.Flush().ok());
    client.Close();
  });
  threads.emplace_back([&] {  // sequenced churn: reconnect between frames
    ReportClient::Options copts;
    copts.enable_sequencing = true;
    copts.stream_id = 2;
    ReportClient client("127.0.0.1", port, copts);
    for (size_t i = 24; i < 36; i += 3) {
      ASSERT_TRUE(client
                      .SendBatch(std::span<const io::WireReport>(
                          reports.data() + i, 3))
                      .ok());
      ASSERT_TRUE(client.Flush().ok());
      client.Close();  // next SendBatch redials
    }
  });
  for (auto& thread : threads) thread.join();

  FinishAndVerify(shard.get(), reference);
  const auto stats = shard->server->stats();
  // The churn thread redialled per frame: well more than 3 connections.
  EXPECT_GE(stats.connections_accepted, 6u);
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);
  EXPECT_EQ(stats.connections_failed, 0u);
}

TEST_F(ReactorIngestFixture, ShortLivedConnectionChurnLosesNothing) {
  // Many short-lived connections, one frame each, several at a time —
  // the accept/adopt/close path under churn. Every report must land
  // exactly once.
  const uint64_t seed = 31;
  const auto users = MakeUsers(48, 23);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  IngestServer::Options options;
  options.reactor_threads = 2;
  auto shard = StartShard(seed, options);
  ASSERT_NE(shard, nullptr);
  const uint16_t port = shard->server->port();

  constexpr size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t * 12; i < (t + 1) * 12; ++i) {
        ReportClient client("127.0.0.1", port);  // fresh connection per report
        ASSERT_TRUE(client
                        .SendBatch(std::span<const io::WireReport>(
                            reports.data() + i, 1))
                        .ok());
        client.Close();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  FinishAndVerify(shard.get(), reference);
  const auto stats = shard->server->stats();
  EXPECT_GE(stats.connections_accepted, 48u);
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);
  EXPECT_EQ(stats.connections_failed, 0u);
  EXPECT_TRUE(shard->server->first_connection_error().ok())
      << shard->server->first_connection_error();
}

/// Restores RLIMIT_NOFILE no matter how the test exits.
struct RlimitGuard {
  RlimitGuard() { getrlimit(RLIMIT_NOFILE, &saved); }
  ~RlimitGuard() { setrlimit(RLIMIT_NOFILE, &saved); }
  struct rlimit saved {};
};

int HighestOpenFd() {
  int highest = -1;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    highest = std::max(highest, std::stoi(entry.path().filename().string()));
  }
  return highest;
}

TEST_F(ReactorIngestFixture, FdExhaustionBacksOffAndRecovers) {
  const uint64_t seed = 37;
  const auto users = MakeUsers(4, 29);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  IngestServer::Options options;
  options.reactor_threads = 1;
  options.push_retry = std::chrono::milliseconds(5);  // fast re-arm
  auto shard = StartShard(seed, options);
  ASSERT_NE(shard, nullptr);
  const uint16_t port = shard->server->port();

  RlimitGuard guard;
  // Leave a little headroom above today's fd usage, then burn through
  // it with held-open client connections: each one costs a client fd
  // AND an accepted server fd, so within a few dials accept4 hits
  // EMFILE. The listener must deregister and back off — no hot spin —
  // and the counter must show it.
  struct rlimit tight = guard.saved;
  tight.rlim_cur = static_cast<rlim_t>(HighestOpenFd() + 8);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &tight), 0);

  std::vector<Socket> held;
  bool backed_off = false;
  for (int attempt = 0; attempt < 64 && !backed_off; ++attempt) {
    auto conn = TcpConnect("127.0.0.1", port);
    if (conn.ok()) {
      held.push_back(std::move(*conn));
    } else if (!held.empty()) {
      // Our own socket() hit the wall first; hand the accept side the
      // next fd instead.
      held.pop_back();
    }
    backed_off = WaitFor(
        [&] { return shard->server->stats().accept_backoffs >= 1; },
        std::chrono::seconds(1));
  }
  EXPECT_TRUE(backed_off) << "accept never hit fd exhaustion";

  // Pressure off: limit restored, sacrificial connections closed. The
  // re-armed listener must accept fresh connections and ingest normally.
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &guard.saved), 0);
  held.clear();
  ReportClient client("127.0.0.1", port);
  ASSERT_TRUE(client.SendBatch(reports).ok());
  client.Close();
  ASSERT_TRUE(WaitFor([&] {
    return shard->collector->reports_released() == users.size();
  }));
  EXPECT_GE(shard->server->stats().accept_backoffs, 1u);
  FinishAndVerify(shard.get(), reference);
}

}  // namespace
}  // namespace trajldp::net
