// Cross-module property sweeps: invariants that must hold for every
// parameter combination, exercised with parameterized gtest (TEST_P).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/mechanism.h"
#include "core/reachability.h"
#include "core/viterbi_reconstructor.h"
#include "eval/normalized_error.h"
#include "ldp/exponential_mechanism.h"
#include "test_world.h"

namespace trajldp {
namespace {

using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

// ---------- Mechanism invariants over (epsilon, n, seed) ----------

class MechanismSweep
    : public ::testing::TestWithParam<std::tuple<double, int, uint64_t>> {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 5;
    options.cols = 5;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
};

TEST_P(MechanismSweep, OutputAlwaysValidSameLengthDeterministic) {
  const auto [epsilon, n, seed] = GetParam();
  core::NGramConfig config;
  config.n = n;
  config.epsilon = epsilon;
  config.decomposition.grid_size = 2;
  config.decomposition.coarse_grids = {1};
  config.decomposition.base_interval_minutes = 120;
  config.decomposition.merge.kappa = 2;
  config.reachability.speed_kmh = 8.0;
  config.reachability.reference_gap_minutes = 60;

  auto mech = core::NGramMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok()) << mech.status();

  const auto input = MakeTrajectory({{0, 54}, {6, 60}, {12, 72}, {18, 84}});
  Rng rng1(seed), rng2(seed);
  auto a = mech->Perturb(input, rng1);
  auto b = mech->Perturb(input, rng2);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size(), input.size());
  EXPECT_TRUE(a->Validate(time_).ok());
  EXPECT_EQ(*a, *b);  // determinism
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonNgramSeed, MechanismSweep,
    ::testing::Combine(::testing::Values(0.1, 1.0, 5.0),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1ULL, 2ULL)));

// ---------- EM ratio bound over epsilon ----------

class EmRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(EmRatioSweep, RatioNeverExceedsExpEpsilon) {
  const double epsilon = GetParam();
  // A 6-point domain with an arbitrary asymmetric distance table.
  const int n = 6;
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  Rng rng(42);
  double max_d = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        dist[i][j] = rng.UniformDouble(0.1, 9.0);
        max_d = std::max(max_d, dist[i][j]);
      }
    }
  }
  auto em = ldp::ExponentialMechanism::Create(epsilon, max_d);
  ASSERT_TRUE(em.ok());
  std::vector<std::vector<double>> probs(n);
  for (int x = 0; x < n; ++x) {
    std::vector<double> q(n);
    for (int y = 0; y < n; ++y) q[y] = -dist[x][y];
    probs[x] = em->Probabilities(q);
  }
  for (int x1 = 0; x1 < n; ++x1) {
    for (int x2 = 0; x2 < n; ++x2) {
      for (int y = 0; y < n; ++y) {
        EXPECT_LE(probs[x1][y] / probs[x2][y],
                  std::exp(epsilon) * (1.0 + 1e-9));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EmRatioSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 2.0, 5.0,
                                           10.0));

// ---------- Statistical ε-LDP sanity (Monte Carlo) ----------

// Empirically verifies the Theorem 5.3 guarantee on the n-gram perturber
// itself: for any two adjacent inputs (any two trajectories — LDP
// adjacency is unrestricted) and any output, the output-probability
// ratio is bounded by e^ε. Single-point trajectories keep the output
// space enumerable (one 1-gram, i.e. one region), so empirical
// frequencies estimate the output distribution directly; the slack
// absorbs Monte-Carlo noise on top of the exact bound.
TEST(LdpMonteCarloTest, PerturberAdjacentInputRatiosWithinExpEpsilon) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  region::DecompositionConfig dconfig;
  dconfig.grid_size = 2;
  dconfig.coarse_grids = {1};
  dconfig.base_interval_minutes = 360;
  dconfig.merge.kappa = 1;
  auto decomp = region::StcDecomposition::Build(&*db, time, dconfig);
  ASSERT_TRUE(decomp.ok());
  region::RegionDistance distance(&*decomp);
  model::ReachabilityConfig reach{8.0, 60};
  const auto graph = region::RegionGraph::Build(*decomp, reach);
  core::NgramDomain domain(&graph, &distance);

  const double epsilon = 1.0;
  core::NgramPerturber perturber(&domain,
                                 core::NgramPerturber::Config{1, epsilon});
  const size_t num_regions = decomp->num_regions();
  ASSERT_GE(num_regions, 4u);
  const region::RegionTrajectory x1 = {0};
  const region::RegionTrajectory x2 = {
      static_cast<region::RegionId>(num_regions / 2)};

  constexpr size_t kSamples = 200000;
  std::vector<size_t> count1(num_regions, 0), count2(num_regions, 0);
  core::SamplerWorkspace ws;
  Rng rng(20260729);
  for (size_t s = 0; s < kSamples; ++s) {
    auto z1 = perturber.Perturb(x1, rng, ws);
    ASSERT_TRUE(z1.ok());
    ++count1[(*z1)[0].regions[0]];
    auto z2 = perturber.Perturb(x2, rng, ws);
    ASSERT_TRUE(z2.ok());
    ++count2[(*z2)[0].regions[0]];
  }

  // Empirical ratio bound. Restricting to well-estimated outputs (≥ 200
  // hits on both inputs) keeps the ratio estimator's noise within the
  // slack; the EM weight floor e^{−ε/2}/R makes every region
  // well-estimated at this sample size anyway.
  const double bound = std::exp(epsilon);
  constexpr double kSlack = 0.15;
  constexpr size_t kMinCount = 200;
  size_t checked = 0;
  for (size_t y = 0; y < num_regions; ++y) {
    if (count1[y] < kMinCount || count2[y] < kMinCount) continue;
    ++checked;
    const double p1 = static_cast<double>(count1[y]) / kSamples;
    const double p2 = static_cast<double>(count2[y]) / kSamples;
    EXPECT_LE(p1 / p2, bound * (1.0 + kSlack)) << "output region " << y;
    EXPECT_LE(p2 / p1, bound * (1.0 + kSlack)) << "output region " << y;
  }
  // The sweep must actually have tested something: nearly every region
  // should clear the count threshold at this ε.
  EXPECT_GE(checked, num_regions / 2);
}

// ---------- Utility is monotone in epsilon (on average) ----------

TEST(UtilityMonotonicityTest, ErrorDecreasesWithEpsilon) {
  trajldp::testing::GridWorldOptions options;
  options.rows = 5;
  options.cols = 5;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);

  const auto input = MakeTrajectory({{0, 54}, {6, 60}, {12, 72}});
  const model::TrajectorySet real(8, input);

  std::vector<double> errors;
  for (double epsilon : {0.1, 2.0, 50.0}) {
    core::NGramConfig config;
    config.epsilon = epsilon;
    config.decomposition.grid_size = 2;
    config.decomposition.coarse_grids = {1};
    config.decomposition.base_interval_minutes = 120;
    config.decomposition.merge.kappa = 2;
    config.reachability.speed_kmh = 8.0;
    config.reachability.reference_gap_minutes = 60;
    auto mech = core::NGramMechanism::Build(&*db, time, config);
    ASSERT_TRUE(mech.ok());

    model::TrajectorySet perturbed;
    for (uint64_t seed = 0; seed < real.size(); ++seed) {
      Rng rng(seed);
      auto out = mech->Perturb(input, rng);
      ASSERT_TRUE(out.ok());
      perturbed.push_back(std::move(*out));
    }
    auto ne = eval::ComputeNormalizedError(*db, time, real, perturbed);
    ASSERT_TRUE(ne.ok());
    errors.push_back(ne->space_km + ne->category + ne->time_hours);
  }
  // Tiny budget must be worse than huge budget; allow the middle point
  // noise but enforce the endpoints strongly.
  EXPECT_GT(errors[0], errors[2]);
}

// ---------- Viterbi optimality under random candidate subsets ----------

class ReconstructionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReconstructionSweep, ViterbiNeverWorseThanRandomFeasiblePath) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  region::DecompositionConfig dconfig;
  dconfig.grid_size = 2;
  dconfig.coarse_grids = {1};
  dconfig.base_interval_minutes = 360;
  dconfig.merge.kappa = 1;
  auto decomp = region::StcDecomposition::Build(&*db, time, dconfig);
  ASSERT_TRUE(decomp.ok());
  region::RegionDistance distance(&*decomp);
  model::ReachabilityConfig reach{8.0, 60};
  const auto graph = region::RegionGraph::Build(*decomp, reach);
  core::NgramDomain domain(&graph, &distance);
  core::NgramPerturber perturber(&domain, core::NgramPerturber::Config{2, 5.0});

  region::RegionTrajectory tau;
  for (model::PoiId p = 0; p < 4; ++p) {
    tau.push_back(*decomp->Lookup(p, 60 + 6 * p));
  }
  Rng rng(GetParam());
  auto z = perturber.Perturb(tau, rng);
  ASSERT_TRUE(z.ok());

  std::vector<region::RegionId> all(decomp->num_regions());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<region::RegionId>(i);
  }
  auto problem = core::ReconstructionProblem::Create(&distance, &graph,
                                                     tau.size(), *z, all);
  ASSERT_TRUE(problem.ok());
  core::ViterbiReconstructor viterbi;
  auto optimal = viterbi.Reconstruct(*problem);
  ASSERT_TRUE(optimal.ok());

  // Score the optimum.
  auto index_of = [&](region::RegionId id) {
    return static_cast<size_t>(id);  // candidates == all regions
  };
  std::vector<size_t> opt_assignment;
  for (region::RegionId id : *optimal) opt_assignment.push_back(index_of(id));
  const double opt_cost = problem->Objective(opt_assignment);

  // Generate random feasible paths by walking the graph; none may beat
  // the DP optimum.
  Rng walker(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> assignment;
    region::RegionId current = static_cast<region::RegionId>(
        walker.UniformUint64(decomp->num_regions()));
    assignment.push_back(index_of(current));
    bool dead_end = false;
    for (size_t i = 1; i < tau.size(); ++i) {
      const auto neighbors = graph.Neighbors(current);
      if (neighbors.empty()) {
        dead_end = true;
        break;
      }
      current = neighbors[walker.UniformUint64(neighbors.size())];
      assignment.push_back(index_of(current));
    }
    if (dead_end) continue;
    EXPECT_GE(problem->Objective(assignment), opt_cost - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconstructionSweep,
                         ::testing::Values(100, 200, 300, 400, 500, 600));

// ---------- Coverage invariant across lengths and n ----------

class CoverageSweep
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(CoverageSweep, EveryPositionCoveredExactlyNTimes) {
  const auto [len, n] = GetParam();
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  region::DecompositionConfig dconfig;
  dconfig.grid_size = 2;
  dconfig.coarse_grids = {1};
  dconfig.base_interval_minutes = 360;
  dconfig.merge.kappa = 1;
  auto decomp = region::StcDecomposition::Build(&*db, time, dconfig);
  ASSERT_TRUE(decomp.ok());
  region::RegionDistance distance(&*decomp);
  model::ReachabilityConfig reach{8.0, 60};
  const auto graph = region::RegionGraph::Build(*decomp, reach);
  core::NgramDomain domain(&graph, &distance);
  core::NgramPerturber perturber(&domain,
                                 core::NgramPerturber::Config{n, 5.0});

  region::RegionTrajectory tau;
  for (size_t i = 0; i < len; ++i) {
    tau.push_back(*decomp->Lookup(static_cast<model::PoiId>(i % 16),
                                  static_cast<model::Timestep>(30 + 6 * i)));
  }
  Rng rng(7);
  auto z = perturber.Perturb(tau, rng);
  ASSERT_TRUE(z.ok());
  const size_t n_eff = std::min<size_t>(static_cast<size_t>(n), len);
  EXPECT_EQ(z->size(), len + n_eff - 1);
  for (size_t i = 1; i <= len; ++i) {
    EXPECT_EQ(core::CoverageCount(*z, i), n_eff) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LengthByN, CoverageSweep,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 5, 8),
                       ::testing::Values(1, 2, 3)));

// ---------- ReachabilityTable vs brute-force oracle ----------

// The table's contract (ISSUE 4): for EVERY POI pair and EVERY integer
// timestep budget, lookups answer exactly what model::Reachability's
// formula answers, and the per-(poi, budget) successor spans are exactly
// the formula's reachable sets — on randomized worlds covering scattered
// POI layouts, different world scales (including disconnected POIs no
// same-day budget connects), travel speeds, and time granularities.

struct ReachabilityWorldParam {
  size_t num_pois;
  double extent_km;  // POIs scatter uniformly in [0, extent_km)²
  double speed_kmh;
  int granularity_minutes;
  uint64_t seed;
};

class ReachabilityTableSweep
    : public ::testing::TestWithParam<ReachabilityWorldParam> {
 protected:
  // A randomized scatter world: `num_pois` POIs at Rng-drawn offsets,
  // categories cycling through the small tree's leaves, and every third
  // POI open only 8:00–20:00 (opening hours are irrelevant to
  // reachability but keep the world shaped like real inputs).
  static StatusOr<model::PoiDatabase> MakeScatterWorld(
      const ReachabilityWorldParam& param) {
    hierarchy::CategoryTree tree = trajldp::testing::MakeSmallTree();
    const auto leaves = tree.Leaves();
    const geo::LatLon origin{40.7000, -74.0000};
    Rng rng(param.seed);
    std::vector<model::Poi> pois;
    for (size_t i = 0; i < param.num_pois; ++i) {
      model::Poi poi;
      poi.name = "poi_" + std::to_string(i);
      poi.location =
          geo::OffsetKm(origin, rng.UniformDouble(0.0, param.extent_km),
                        rng.UniformDouble(0.0, param.extent_km));
      poi.category = leaves[i % leaves.size()];
      poi.popularity = 1.0 + static_cast<double>(i);
      if (i % 3 == 0) poi.hours = model::OpeningHours::Daily(480, 1200);
      pois.push_back(std::move(poi));
    }
    return model::PoiDatabase::Create(std::move(pois), std::move(tree));
  }
};

TEST_P(ReachabilityTableSweep, LookupMatchesFormulaForEveryPairAndBudget) {
  const auto& param = GetParam();
  auto db = MakeScatterWorld(param);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(param.granularity_minutes);
  model::ReachabilityConfig config{param.speed_kmh, 30};
  const model::Reachability reach(&*db, time, config);
  auto table = core::ReachabilityTable::Build(*db, time, config);
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_TRUE(table->has_successors());

  const model::Timestep num_t = time.num_timesteps();
  for (model::PoiId p = 0; p < db->size(); ++p) {
    for (model::PoiId q = 0; q < db->size(); ++q) {
      for (model::Timestep g = -1; g <= num_t; ++g) {
        ASSERT_EQ(table->IsReachable(p, q, g),
                  reach.IsReachable(p, q, time.GapMinutes(0, g)))
            << "p=" << p << " q=" << q << " gap=" << g;
      }
      // The min-gap is the exact threshold of the monotone predicate.
      const uint16_t mg = table->MinGapTimesteps(p, q);
      if (mg == core::ReachabilityTable::kNever) {
        EXPECT_FALSE(reach.IsReachable(p, q, time.GapMinutes(0, num_t)));
      } else {
        EXPECT_TRUE(reach.IsReachable(
            p, q, time.GapMinutes(0, static_cast<model::Timestep>(mg))));
        if (mg > 1) {
          EXPECT_FALSE(reach.IsReachable(
              p, q,
              time.GapMinutes(0, static_cast<model::Timestep>(mg - 1))));
        }
      }
    }
  }
}

TEST_P(ReachabilityTableSweep, SuccessorSpansMatchBruteForceSets) {
  const auto& param = GetParam();
  auto db = MakeScatterWorld(param);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(param.granularity_minutes);
  model::ReachabilityConfig config{param.speed_kmh, 30};
  const model::Reachability reach(&*db, time, config);
  auto table = core::ReachabilityTable::Build(*db, time, config);
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_TRUE(table->has_successors());

  const model::Timestep num_t = time.num_timesteps();
  for (model::PoiId p = 0; p < db->size(); ++p) {
    for (model::Timestep g : {model::Timestep{0}, model::Timestep{1},
                              model::Timestep{2}, num_t / 2, num_t}) {
      const auto span = table->SuccessorsWithin(p, g);
      std::vector<model::PoiId> from_table(span.begin(), span.end());
      std::sort(from_table.begin(), from_table.end());
      std::vector<model::PoiId> oracle;
      for (model::PoiId q = 0; q < db->size(); ++q) {
        if (reach.IsReachable(p, q, time.GapMinutes(0, g))) {
          oracle.push_back(q);
        }
      }
      EXPECT_EQ(from_table, oracle) << "p=" << p << " gap=" << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorlds, ReachabilityTableSweep,
    ::testing::Values(
        // Dense small city: everything reachable within a few steps.
        ReachabilityWorldParam{24, 4.0, 8.0, 60, 1},
        // Sprawl at walking speed: most budgets insufficient.
        ReachabilityWorldParam{20, 60.0, 4.0, 60, 2},
        // Disconnected: 500 km extent, 4 km/h — cross-town pairs are
        // kNever (no same-day budget reaches them).
        ReachabilityWorldParam{16, 500.0, 4.0, 120, 3},
        // Fine time granularity (many buckets).
        ReachabilityWorldParam{12, 10.0, 6.0, 10, 4},
        // Different seed → different scatter.
        ReachabilityWorldParam{24, 25.0, 12.0, 30, 5}));

TEST(ReachabilityTableTest, UnconstrainedAnswersTrueWithoutStorage) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(60);
  auto table = core::ReachabilityTable::Build(
      *db, time, model::ReachabilityConfig::Unconstrained());
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->unconstrained());
  EXPECT_EQ(table->MemoryBytes(), 0u);
  EXPECT_TRUE(table->IsReachable(0, 15, -3));
  EXPECT_TRUE(table->IsReachable(0, 15, 0));
  EXPECT_TRUE(table->IsReachable(0, 15, 1));
}

TEST(ReachabilityTableTest, DisconnectedPairReportsNever) {
  // Two POIs 500 km apart at 4 km/h: unreachable in any same-day gap.
  trajldp::testing::GridWorldOptions options;
  options.rows = 1;
  options.cols = 2;
  options.spacing_km = 500.0;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  auto table =
      core::ReachabilityTable::Build(*db, time, {4.0, 30});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->MinGapTimesteps(0, 1), core::ReachabilityTable::kNever);
  EXPECT_EQ(table->MinGapTimesteps(0, 0), 1);
  EXPECT_FALSE(table->IsReachable(0, 1, time.num_timesteps()));
}

TEST(ReachabilityTableTest, MemoryBudgetDropsCsrThenFailsBuild) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(60);
  const model::ReachabilityConfig config{8.0, 30};
  // 16 POIs → matrix 512 B, CSR 1024 + 16·25·4 B. A budget that admits
  // the matrix but not the CSR must keep lookups and drop the spans.
  core::ReachabilityTable::Options options;
  options.max_bytes = 600;
  auto matrix_only = core::ReachabilityTable::Build(*db, time, config,
                                                    options);
  ASSERT_TRUE(matrix_only.ok());
  EXPECT_FALSE(matrix_only->has_successors());
  EXPECT_TRUE(matrix_only->IsReachable(0, 0, 1));
  EXPECT_TRUE(matrix_only->SuccessorsWithin(0, 5).empty());
  // A budget under the matrix itself must fail loudly.
  options.max_bytes = 100;
  auto too_small = core::ReachabilityTable::Build(*db, time, config,
                                                  options);
  ASSERT_FALSE(too_small.ok());
  EXPECT_EQ(too_small.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace trajldp
