// Statistical-equivalence harness for the §5.6 POI sampling policies
// (ISSUE 4): the guided sampler must draw from the SAME conditional
// distribution as the paper's rejection loop — uniform over the feasible
// (POI, timestep) assignments of a region sequence. Three layers:
//
//  1. exact ground truth — brute-force enumeration of the feasible set
//     on a small world, then a goodness-of-fit chi-squared of each
//     policy's empirical distribution against the uniform law;
//  2. two-sample chi-squared + total-variation distance between the two
//     policies' empirical distributions (50k draws each, fixed seeds);
//  3. determinism — the draws are seeded, so every statistic here is a
//     constant: a failure is a real distribution change, never flake.
//
// Tolerances (documented for satellite 1):
//  * chi-squared thresholds are the Wilson–Hilferty critical value at
//    z = 3.72 (p ≈ 1e-4) for the pooled degrees of freedom — far above
//    any plausible sampling fluctuation at these draw counts, far below
//    the statistic a genuinely different distribution produces (a
//    uniform-vs-biased gap on this world scores thousands);
//  * total variation must stay under 0.05: the expected TV between two
//    empirical distributions of the true law is ≈ 0.4·√(K/N) ≈ 0.02 for
//    K ≈ 150 outcomes and N = 50,000 draws; 0.05 gives ≈ 2.5× headroom
//    while a systematic bias of even a few percent per outcome fails.
//  * expected counts below 10 (pooled across both samples) merge into
//    one bucket so the chi-squared approximation stays valid.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/poi_reconstructor.h"
#include "core/reachability.h"
#include "model/reachability.h"
#include "region/decomposition.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;

// One complete output trajectory, encoded for counting: (poi, t) pairs.
using OutcomeKey = std::vector<int32_t>;
using Histogram = std::map<OutcomeKey, size_t>;

OutcomeKey KeyOf(const model::Trajectory& traj) {
  OutcomeKey key;
  key.reserve(traj.size() * 2);
  for (size_t i = 0; i < traj.size(); ++i) {
    key.push_back(static_cast<int32_t>(traj.point(i).poi));
    key.push_back(static_cast<int32_t>(traj.point(i).t));
  }
  return key;
}

// Wilson–Hilferty approximation of the upper chi-squared quantile.
double ChiSquaredCritical(double df, double z) {
  const double a = 2.0 / (9.0 * df);
  const double t = 1.0 - a + z * std::sqrt(a);
  return df * t * t * t;
}

struct TwoSampleResult {
  double chi2 = 0.0;
  double df = 0.0;
  double tv = 0.0;
};

// Two-sample chi-squared over the union of outcomes, pooling rare
// outcomes (combined count < 10) into one bucket, plus the total
// variation distance between the two empirical distributions.
TwoSampleResult CompareHistograms(const Histogram& a, const Histogram& b,
                                  double n_a, double n_b) {
  std::map<OutcomeKey, std::pair<double, double>> joint;
  for (const auto& [key, count] : a) joint[key].first += count;
  for (const auto& [key, count] : b) joint[key].second += count;

  TwoSampleResult result;
  double pooled_a = 0.0, pooled_b = 0.0;
  size_t buckets = 0;
  for (const auto& [key, counts] : joint) {
    const auto& [ca, cb] = counts;
    result.tv += 0.5 * std::abs(ca / n_a - cb / n_b);
    if (ca + cb < 10.0) {
      pooled_a += ca;
      pooled_b += cb;
      continue;
    }
    const double diff = n_b * ca - n_a * cb;
    result.chi2 += diff * diff / (n_a * n_b * (ca + cb));
    ++buckets;
  }
  if (pooled_a + pooled_b > 0.0) {
    const double diff = n_b * pooled_a - n_a * pooled_b;
    result.chi2 += diff * diff / (n_a * n_b * (pooled_a + pooled_b));
    ++buckets;
  }
  result.df = buckets > 1 ? static_cast<double>(buckets - 1) : 1.0;
  return result;
}

// Goodness-of-fit chi-squared of `observed` against the uniform law on
// `support` (every enumerated feasible outcome equally likely), with the
// same rare-bucket pooling.
TwoSampleResult CompareToUniform(const Histogram& observed,
                                 const std::vector<OutcomeKey>& support,
                                 double n) {
  const double expected = n / static_cast<double>(support.size());
  TwoSampleResult result;
  double pooled_obs = 0.0, pooled_exp = 0.0;
  size_t buckets = 0;
  for (const OutcomeKey& key : support) {
    const auto it = observed.find(key);
    const double obs =
        it != observed.end() ? static_cast<double>(it->second) : 0.0;
    result.tv += 0.5 * std::abs(obs / n - 1.0 / support.size());
    if (expected < 10.0) {
      pooled_obs += obs;
      pooled_exp += expected;
      continue;
    }
    result.chi2 += (obs - expected) * (obs - expected) / expected;
    ++buckets;
  }
  if (pooled_exp > 0.0) {
    result.chi2 +=
        (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) / pooled_exp;
    ++buckets;
  }
  result.df = buckets > 1 ? static_cast<double>(buckets - 1) : 1.0;
  return result;
}

// A small world where every feasibility constraint BINDS: 1.05 km/h
// travel speed (adjacent 1 km lattice POIs need a full one-hour
// timestep — safely above the haversine round-trip of the 1 km offset —
// and diagonal √2 km pairs need two), odd POIs open 9:00–17:00 only
// (cutting the 17:00 timestep of the 12:00–18:00 region intervals), and
// strict time ordering across three positions.
class SamplingFidelityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.restrict_odd_hours = true;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(60);

    region::DecompositionConfig config;
    config.grid_size = 2;
    config.coarse_grids = {1};
    config.base_interval_minutes = 360;
    config.merge.kappa = 1;
    auto decomp = region::StcDecomposition::Build(db_.get(), time_, config);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<region::StcDecomposition>(std::move(*decomp));

    reach_config_.speed_kmh = 1.05;
    reach_config_.reference_gap_minutes = 60;
    reach_ = std::make_unique<model::Reachability>(db_.get(), time_,
                                                   reach_config_);
    auto table = ReachabilityTable::Build(*db_, time_, reach_config_);
    ASSERT_TRUE(table.ok()) << table.status();
    table_ = std::make_unique<ReachabilityTable>(std::move(*table));

    // Three afternoon regions around the lattice's lower-left corner —
    // every position has multiple POIs and/or timesteps, and both the
    // 1 km/h reachability and the odd-POI opening hours cut outcomes.
    regions_ = {*decomp_->Lookup(0, time_.MinuteToTimestep(13 * 60)),
                *decomp_->Lookup(1, time_.MinuteToTimestep(14 * 60)),
                *decomp_->Lookup(4, time_.MinuteToTimestep(15 * 60))};
  }

  // Empirical output distribution of `policy` over `draws` independent
  // releases, each on its own substream of one root seed. Asserts the
  // smoothing fallback never fires (these inputs are feasible, so a
  // smoothed output would mean a sampler lost mass it should find).
  Histogram Sample(PoiPolicy policy, size_t draws, uint64_t seed) {
    PoiReconstructor::Config config;
    config.policy = policy;
    // Rejection runs table-less (the paper's formula path); guided runs
    // on the table — so this harness also covers table-vs-formula
    // equivalence statistically.
    PoiReconstructor reconstructor =
        policy == PoiPolicy::kGuided
            ? PoiReconstructor(decomp_.get(), reach_.get(), table_.get(),
                               config)
            : PoiReconstructor(decomp_.get(), reach_.get(), config);
    Histogram histogram;
    PoiReconstructor::Workspace ws;
    const Rng root(seed);
    for (size_t i = 0; i < draws; ++i) {
      Rng rng = root.Substream(i);
      auto result = reconstructor.Reconstruct(regions_, rng, ws);
      EXPECT_TRUE(result.ok()) << result.status();
      EXPECT_FALSE(result->smoothed);
      ++histogram[KeyOf(result->trajectory)];
    }
    return histogram;
  }

  // Brute-force enumeration of the feasible set: every (POI, timestep)
  // assignment from the per-position boxes that is strictly increasing
  // in time, open at every visit, and reachable between consecutive
  // points — evaluated with model::Reachability's formula, independent
  // of every sampler and of the table.
  std::vector<OutcomeKey> EnumerateFeasible() {
    struct Box {
      std::vector<model::PoiId> pois;
      model::Timestep first, last;
    };
    std::vector<Box> boxes;
    for (region::RegionId id : regions_) {
      const region::StcRegion& r = decomp_->region(id);
      boxes.push_back({r.pois, time_.MinuteToTimestep(r.time.begin),
                       time_.MinuteToTimestep(r.time.end - 1)});
    }
    std::vector<OutcomeKey> feasible;
    std::vector<model::PoiId> pois(boxes.size());
    std::vector<model::Timestep> times(boxes.size());
    const auto open_at = [&](model::PoiId p, model::Timestep t) {
      return db_->poi(p).hours.IsOpenAtMinute(time_.TimestepToMinute(t));
    };
    // Depth-first over positions.
    const auto recurse = [&](auto&& self, size_t i) -> void {
      if (i == boxes.size()) {
        OutcomeKey key;
        for (size_t j = 0; j < boxes.size(); ++j) {
          key.push_back(static_cast<int32_t>(pois[j]));
          key.push_back(static_cast<int32_t>(times[j]));
        }
        feasible.push_back(std::move(key));
        return;
      }
      for (model::PoiId p : boxes[i].pois) {
        for (model::Timestep t = boxes[i].first; t <= boxes[i].last; ++t) {
          if (i > 0 && t <= times[i - 1]) continue;
          if (!open_at(p, t)) continue;
          if (i > 0 &&
              !reach_->IsReachableBetween(pois[i - 1], p, times[i - 1], t)) {
            continue;
          }
          pois[i] = p;
          times[i] = t;
          self(self, i + 1);
        }
      }
    };
    recurse(recurse, 0);
    return feasible;
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<region::StcDecomposition> decomp_;
  model::ReachabilityConfig reach_config_;
  std::unique_ptr<model::Reachability> reach_;
  std::unique_ptr<ReachabilityTable> table_;
  region::RegionTrajectory regions_;
};

constexpr size_t kDraws = 50000;

TEST_F(SamplingFidelityTest, FeasibleSetIsNontrivial) {
  // The harness only discriminates if the constraints actually cut the
  // box: the feasible set must be a strict, non-empty subset.
  const auto feasible = EnumerateFeasible();
  size_t box = 1;
  for (region::RegionId id : regions_) {
    const region::StcRegion& r = decomp_->region(id);
    box *= r.pois.size() * (r.time.length() / time_.granularity_minutes());
  }
  ASSERT_GT(feasible.size(), 10u);
  ASSERT_LT(feasible.size(), box);
}

TEST_F(SamplingFidelityTest, RejectionSamplerIsUniformOverFeasibleSet) {
  const auto feasible = EnumerateFeasible();
  const auto hist = Sample(PoiPolicy::kRejection, kDraws, 101);
  // Every observed outcome must be feasible.
  for (const auto& [key, count] : hist) {
    EXPECT_TRUE(std::find(feasible.begin(), feasible.end(), key) !=
                feasible.end());
  }
  const auto gof = CompareToUniform(hist, feasible, kDraws);
  EXPECT_LT(gof.chi2, ChiSquaredCritical(gof.df, 3.72))
      << "chi2=" << gof.chi2 << " df=" << gof.df;
  EXPECT_LT(gof.tv, 0.05) << "tv=" << gof.tv;
}

TEST_F(SamplingFidelityTest, GuidedSamplerIsUniformOverFeasibleSet) {
  const auto feasible = EnumerateFeasible();
  const auto hist = Sample(PoiPolicy::kGuided, kDraws, 202);
  for (const auto& [key, count] : hist) {
    EXPECT_TRUE(std::find(feasible.begin(), feasible.end(), key) !=
                feasible.end());
  }
  const auto gof = CompareToUniform(hist, feasible, kDraws);
  EXPECT_LT(gof.chi2, ChiSquaredCritical(gof.df, 3.72))
      << "chi2=" << gof.chi2 << " df=" << gof.df;
  EXPECT_LT(gof.tv, 0.05) << "tv=" << gof.tv;
}

TEST_F(SamplingFidelityTest, GuidedAndRejectionAreIndistinguishable) {
  const auto rejection = Sample(PoiPolicy::kRejection, kDraws, 303);
  const auto guided = Sample(PoiPolicy::kGuided, kDraws, 404);
  const auto cmp = CompareHistograms(rejection, guided, kDraws, kDraws);
  EXPECT_LT(cmp.chi2, ChiSquaredCritical(cmp.df, 3.72))
      << "chi2=" << cmp.chi2 << " df=" << cmp.df;
  EXPECT_LT(cmp.tv, 0.05) << "tv=" << cmp.tv;
}

TEST_F(SamplingFidelityTest, HarnessDetectsABiasedSampler) {
  // Negative control: the per-step-retry sampler this PR removed (retry
  // only the failing position instead of the whole attempt) is biased
  // toward prefixes with many completions. Simulate its bias cheaply by
  // taking each rejection draw and, with probability ½, replacing it
  // with the minimum feasible outcome — the harness must reject this
  // loudly, or the tolerances above are meaningless.
  const auto feasible = EnumerateFeasible();
  auto hist = Sample(PoiPolicy::kRejection, kDraws, 505);
  Histogram biased = hist;
  // Move half of every outcome's mass onto the first feasible outcome.
  size_t moved = 0;
  for (auto& [key, count] : biased) {
    if (key == feasible.front()) continue;
    const size_t take = count / 2;
    count -= take;
    moved += take;
  }
  biased[feasible.front()] += moved;
  const auto cmp = CompareHistograms(hist, biased, kDraws, kDraws);
  EXPECT_GT(cmp.chi2, 10.0 * ChiSquaredCritical(cmp.df, 3.72));
  const auto gof = CompareToUniform(biased, feasible, kDraws);
  EXPECT_GT(gof.tv, 0.05);
}

TEST_F(SamplingFidelityTest, GuidedIsDeterministicAndCheaperThanRejection) {
  // Same seeds → identical histograms (the statistics above are
  // constants, not flake), and the guided policy must spend strictly
  // fewer attempts in aggregate — that is its whole point.
  const auto a = Sample(PoiPolicy::kGuided, 2000, 606);
  const auto b = Sample(PoiPolicy::kGuided, 2000, 606);
  EXPECT_TRUE(a == b);

  PoiReconstructor::Config rejection_config;
  PoiReconstructor::Config guided_config;
  guided_config.policy = PoiPolicy::kGuided;
  PoiReconstructor rejection(decomp_.get(), reach_.get(), rejection_config);
  PoiReconstructor guided(decomp_.get(), reach_.get(), table_.get(),
                          guided_config);
  PoiReconstructor::Workspace ws;
  size_t rejection_attempts = 0, guided_attempts = 0;
  const Rng root(707);
  for (size_t i = 0; i < 2000; ++i) {
    Rng rng1 = root.Substream(i), rng2 = root.Substream(i);
    auto r = rejection.Reconstruct(regions_, rng1, ws);
    auto g = guided.Reconstruct(regions_, rng2, ws);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(g.ok());
    rejection_attempts += r->attempts;
    guided_attempts += g->attempts;
  }
  EXPECT_LT(guided_attempts * 2, rejection_attempts)
      << "guided=" << guided_attempts
      << " rejection=" << rejection_attempts;
}

}  // namespace
}  // namespace trajldp::core
