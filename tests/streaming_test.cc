#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/shard_plan.h"
#include "core/streaming_collector.h"
#include "io/wire.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;

// The acceptance criterion of the streaming refactor: K independent
// collectors over any user partition, fed any batch sizes, with any
// worker counts, produce output bit-identical to
// BatchReleaseEngine::ReleaseAllFull (itself bit-identical to the
// sequential ReleaseFromRegions loop) under the same seed.
class StreamingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 15;
    options.cols = 15;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    NGramConfig config;
    config.n = 2;
    config.epsilon = 5.0;
    config.decomposition.grid_size = 5;
    config.decomposition.coarse_grids = {1};
    config.decomposition.base_interval_minutes = 720;
    config.decomposition.merge.kappa = 1;
    config.reachability.speed_kmh = 30.0;
    config.reachability.reference_gap_minutes = 60;
    auto mech = NGramMechanism::Build(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok()) << mech.status();
    mech_ = std::make_unique<NGramMechanism>(std::move(*mech));
  }

  std::vector<region::RegionTrajectory> MakeUsers(size_t count,
                                                  uint64_t seed) const {
    const auto num_regions =
        static_cast<uint64_t>(mech_->decomposition().num_regions());
    Rng rng(seed);
    std::vector<region::RegionTrajectory> users(count);
    for (auto& tau : users) {
      const size_t len = 2 + static_cast<size_t>(rng.UniformUint64(4));
      for (size_t i = 0; i < len; ++i) {
        tau.push_back(
            static_cast<region::RegionId>(rng.UniformUint64(num_regions)));
      }
    }
    return users;
  }

  // The device side of the streaming story: the perturbed reports exactly
  // as a perturb-only collection (ReleaseAll) would gather them — which,
  // by the pipeline's RNG seam, are the same n-gram sets ReleaseAllFull
  // consumes internally.
  io::ReportBatch MakeReports(
      const std::vector<region::RegionTrajectory>& users, uint64_t seed) {
    BatchReleaseEngine engine(&mech_->perturber(),
                              BatchReleaseEngine::Config{2});
    auto perturbed = engine.ReleaseAll(users, seed);
    EXPECT_TRUE(perturbed.ok()) << perturbed.status();
    return MakeWireReports(users, std::move(*perturbed), mech_->perturber());
  }

  std::vector<FullRelease> Reference(
      const std::vector<region::RegionTrajectory>& users, uint64_t seed) {
    BatchReleaseEngine engine(mech_.get(), BatchReleaseEngine::Config{2});
    auto reference = engine.ReleaseAllFull(users, seed);
    EXPECT_TRUE(reference.ok()) << reference.status();
    return std::move(*reference);
  }

  // Streams `reports` through `num_shards` independent collectors in
  // batches of `batch_size`, optionally over the wire encoding, and
  // merges the shard outputs.
  StatusOr<std::vector<FullRelease>> StreamAndMerge(
      const io::ReportBatch& reports, uint64_t seed, size_t num_shards,
      size_t batch_size, size_t num_threads, size_t queue_capacity,
      bool encoded,
      std::optional<PoiPolicy> poi_policy = std::nullopt) {
    const ShardPlan plan{num_shards};
    auto sharded = PartitionByShard(plan, io::ReportBatch(reports));
    std::vector<std::vector<UserRelease>> outputs(sharded.size());
    for (size_t s = 0; s < sharded.size(); ++s) {
      StreamingCollector::Config config;
      config.num_threads = num_threads;
      config.queue_capacity = queue_capacity;
      config.poi_policy = poi_policy;
      StreamingCollector collector(
          mech_.get(), seed,
          [&outputs, s](UserRelease release) {
            outputs[s].push_back(std::move(release));
          },
          config);
      for (size_t begin = 0; begin < sharded[s].size();
           begin += batch_size) {
        const size_t end = std::min(begin + batch_size, sharded[s].size());
        io::ReportBatch batch(sharded[s].begin() + begin,
                              sharded[s].begin() + end);
        Status pushed;
        if (encoded) {
          auto frame = io::EncodeReportBatch(batch);
          TRAJLDP_RETURN_NOT_OK(frame.status());
          pushed = collector.PushEncoded(std::move(*frame));
        } else {
          pushed = collector.Push(std::move(batch));
        }
        TRAJLDP_RETURN_NOT_OK(pushed);
      }
      TRAJLDP_RETURN_NOT_OK(collector.Finish());
    }
    return MergeShardReleases(std::move(outputs), reports.size());
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<NGramMechanism> mech_;
};

void ExpectIdenticalReleases(const std::vector<FullRelease>& a,
                             const std::vector<FullRelease>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].regions, b[i].regions) << "user " << i;
    EXPECT_EQ(a[i].trajectory, b[i].trajectory) << "user " << i;
    EXPECT_EQ(a[i].poi_attempts, b[i].poi_attempts) << "user " << i;
    EXPECT_EQ(a[i].smoothed, b[i].smoothed) << "user " << i;
  }
}

// The ASan/UBSan-suite determinism smoke: 1 shard vs 4 shards, both
// against the in-process batch engine.
TEST_F(StreamingFixture, OneVsFourShardsMatchBatchEngine) {
  const uint64_t seed = 20260729;
  const auto users = MakeUsers(24, 3);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  for (const size_t shards : {1u, 4u}) {
    auto merged = StreamAndMerge(reports, seed, shards, /*batch_size=*/4,
                                 /*num_threads=*/2, /*queue_capacity=*/2,
                                 /*encoded=*/false);
    ASSERT_TRUE(merged.ok()) << "shards " << shards << ": "
                             << merged.status();
    ExpectIdenticalReleases(*merged, reference);
  }
}

TEST_F(StreamingFixture, AnyShardCountBatchSizeAndThreadCountIsBitIdentical) {
  const uint64_t seed = 77;
  const auto users = MakeUsers(18, 5);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  for (const size_t shards : {1u, 2u, 3u}) {
    for (const size_t batch_size : {1u, 5u, 18u}) {
      for (const size_t threads : {1u, 4u}) {
        auto merged = StreamAndMerge(reports, seed, shards, batch_size,
                                     threads, /*queue_capacity=*/1,
                                     /*encoded=*/false);
        ASSERT_TRUE(merged.ok())
            << "shards " << shards << " batch " << batch_size << " threads "
            << threads << ": " << merged.status();
        ExpectIdenticalReleases(*merged, reference);
      }
    }
  }
}

// Satellite of ISSUE 4: the guided POI policy flows through the wire /
// ingest path exactly like rejection does — K shards under the guided
// policy merge bit-identically to a single guided collector AND to the
// guided batch engine, because guided draws are a pure function of
// (seed, global user id) via the collector stream's guided substream.
TEST_F(StreamingFixture, GuidedPolicyShardsAreBitIdentical) {
  const uint64_t seed = 20260729;
  const auto users = MakeUsers(20, 7);
  const auto reports = MakeReports(users, seed);

  // Guided reference: the batch engine with the guided policy.
  BatchReleaseEngine::Config engine_config;
  engine_config.num_threads = 2;
  engine_config.poi_policy = PoiPolicy::kGuided;
  BatchReleaseEngine engine(mech_.get(), engine_config);
  auto reference = engine.ReleaseAllFull(users, seed);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // The guided policy must actually change the draws somewhere —
  // otherwise this test degenerates into the rejection test.
  const auto rejection_reference = Reference(users, seed);
  bool any_different = false;
  for (size_t i = 0; i < reference->size(); ++i) {
    if (!((*reference)[i].trajectory == rejection_reference[i].trajectory)) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);

  for (const size_t shards : {1u, 4u}) {
    for (const bool encoded : {false, true}) {
      auto merged = StreamAndMerge(reports, seed, shards, /*batch_size=*/3,
                                   /*num_threads=*/2, /*queue_capacity=*/2,
                                   encoded, PoiPolicy::kGuided);
      ASSERT_TRUE(merged.ok()) << "shards " << shards << " encoded "
                               << encoded << ": " << merged.status();
      ExpectIdenticalReleases(*merged, *reference);
    }
  }
}

// ISSUE 8: StreamingCollector::Config.cache_mode selects the domain's
// cache layout per collector — and because rows are pure functions of
// (region, scale), shards running DIFFERENT modes still merge
// bit-identically to the batch engine.
TEST_F(StreamingFixture, ShardsWithMixedCacheModesMergeBitIdentically) {
  const uint64_t seed = 20260808;
  const auto users = MakeUsers(18, 8);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  constexpr NgramDomain::CacheMode kModes[] = {
      NgramDomain::CacheMode::kShared,
      NgramDomain::CacheMode::kSharded,
      NgramDomain::CacheMode::kPerThread,
  };
  const ShardPlan plan{3};
  auto sharded = PartitionByShard(plan, io::ReportBatch(reports));
  std::vector<std::vector<UserRelease>> outputs(sharded.size());
  for (size_t s = 0; s < sharded.size(); ++s) {
    StreamingCollector::Config config;
    config.num_threads = 2;
    config.queue_capacity = 2;
    config.cache_mode = kModes[s % 3];  // a different mode per shard
    StreamingCollector collector(
        mech_.get(), seed,
        [&outputs, s](UserRelease release) {
          outputs[s].push_back(std::move(release));
        },
        config);
    ASSERT_TRUE(collector.Push(io::ReportBatch(sharded[s])).ok());
    ASSERT_TRUE(collector.Finish().ok());
  }
  auto merged = MergeShardReleases(std::move(outputs), reports.size());
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectIdenticalReleases(*merged, reference);

  // Restore the default for the fixtures that follow (the collectors
  // set the mode on the shared mechanism's domain).
  mech_->perturber().domain().set_cache_mode(
      NgramDomain::CacheMode::kSharded);
}

TEST_F(StreamingFixture, WireEncodedIngestIsBitIdentical) {
  const uint64_t seed = 123;
  const auto users = MakeUsers(12, 9);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  auto merged = StreamAndMerge(reports, seed, /*num_shards=*/2,
                               /*batch_size=*/3, /*num_threads=*/2,
                               /*queue_capacity=*/2, /*encoded=*/true);
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectIdenticalReleases(*merged, reference);
}

TEST_F(StreamingFixture, ReportsReleasedCountsEveryUser) {
  const uint64_t seed = 11;
  const auto users = MakeUsers(10, 13);
  const auto reports = MakeReports(users, seed);
  std::vector<UserRelease> out;
  StreamingCollector collector(
      mech_.get(), seed,
      [&out](UserRelease release) { out.push_back(std::move(release)); });
  ASSERT_TRUE(collector.Push(reports).ok());
  ASSERT_TRUE(collector.Finish().ok());
  EXPECT_EQ(collector.reports_released(), users.size());
  EXPECT_EQ(out.size(), users.size());
}

// ISSUE 5 satellite: a corrupt frame arriving AFTER N good batches have
// already been processed must surface a clean Status from Finish() while
// leaving every already-emitted release intact (and still bit-identical
// to the reference) — the error policy's "reports already emitted stay
// emitted" clause, previously only exercised for whole-stream failures.
TEST_F(StreamingFixture, MidStreamCorruptFrameKeepsEmittedReleases) {
  const uint64_t seed = 20260729;
  const auto users = MakeUsers(12, 17);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  std::mutex mu;
  std::vector<UserRelease> out;
  StreamingCollector collector(
      mech_.get(), seed,
      [&](UserRelease release) {
        std::lock_guard<std::mutex> lock(mu);
        out.push_back(std::move(release));
      });

  // N good single-report batches, drained to completion so none of them
  // can be discarded as in-flight when the error latches.
  for (const io::WireReport& report : reports) {
    auto frame = io::EncodeReportBatch(io::ReportBatch{report});
    ASSERT_TRUE(frame.ok()) << frame.status();
    ASSERT_TRUE(collector.PushEncoded(std::move(*frame)).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (collector.reports_released() < users.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(collector.reports_released(), users.size());

  // Then one frame with a flipped payload byte: CRC catches it on a
  // worker, the error latches, Finish reports it.
  auto good = io::EncodeReportBatch(io::ReportBatch{reports[0]});
  ASSERT_TRUE(good.ok());
  std::string corrupt = *good;
  corrupt[io::kWireHeaderBytes + 2] =
      static_cast<char>(corrupt[io::kWireHeaderBytes + 2] ^ 0x20);
  ASSERT_TRUE(collector.PushEncoded(std::move(corrupt)).ok());

  auto status = collector.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);

  // Every release emitted before the corruption is untouched and exact.
  ASSERT_EQ(out.size(), users.size());
  std::vector<std::vector<UserRelease>> one_shard(1);
  one_shard[0] = std::move(out);
  auto merged = MergeShardReleases(std::move(one_shard), users.size());
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectIdenticalReleases(*merged, reference);
}

// The transport seam: frames pulled from a FrameSource (here a wire
// stream in memory) release identically to frames pushed by hand.
TEST_F(StreamingFixture, IngestEncodedFromIstreamSourceIsBitIdentical) {
  const uint64_t seed = 55;
  const auto users = MakeUsers(10, 19);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  std::stringstream stream;
  io::WireWriter writer(&stream);
  for (size_t begin = 0; begin < reports.size(); begin += 3) {
    const size_t end = std::min(begin + 3, reports.size());
    ASSERT_TRUE(writer
                    .WriteBatch(std::span<const io::WireReport>(
                        reports.data() + begin, end - begin))
                    .ok());
  }

  std::mutex mu;
  std::vector<std::vector<UserRelease>> outputs(1);
  StreamingCollector collector(mech_.get(), seed, [&](UserRelease release) {
    std::lock_guard<std::mutex> lock(mu);
    outputs[0].push_back(std::move(release));
  });
  IstreamFrameSource source(&stream);
  ASSERT_TRUE(collector.IngestEncoded(source).ok());
  ASSERT_TRUE(collector.Finish().ok());
  auto merged = MergeShardReleases(std::move(outputs), users.size());
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectIdenticalReleases(*merged, reference);
}

TEST_F(StreamingFixture, PushEncodedForTimesOutThenAccepts) {
  const uint64_t seed = 3;
  const auto users = MakeUsers(4, 23);
  const auto reports = MakeReports(users, seed);

  // One worker blocked in the sink + capacity-1 queue → a third frame
  // must time out, survive intact, and go through once the sink drains.
  std::mutex gate;
  gate.lock();
  std::atomic<size_t> released{0};
  StreamingCollector::Config config;
  config.num_threads = 1;
  config.queue_capacity = 1;
  StreamingCollector collector(
      mech_.get(), seed,
      [&](UserRelease) {
        if (released.fetch_add(1) == 0) {
          std::lock_guard<std::mutex> wait(gate);  // block the first emit
        }
      },
      config);

  auto frame_for = [&](size_t i) {
    return *io::EncodeReportBatch(io::ReportBatch{reports[i]});
  };
  ASSERT_TRUE(collector.PushEncoded(frame_for(0)).ok());  // into the worker
  std::string second = frame_for(1);
  std::string third = frame_for(2);
  // Fill the queue, then watch the timed push bounce.
  bool accepted = false;
  for (int attempts = 0; attempts < 1000 && !accepted; ++attempts) {
    ASSERT_TRUE(collector
                    .PushEncodedFor(second, std::chrono::milliseconds(1),
                                    &accepted)
                    .ok());
  }
  ASSERT_TRUE(accepted);
  accepted = true;
  ASSERT_TRUE(collector
                  .PushEncodedFor(third, std::chrono::milliseconds(1),
                                  &accepted)
                  .ok());
  EXPECT_FALSE(accepted);           // queue full, sink gated
  EXPECT_FALSE(third.empty());      // frame handed back intact
  gate.unlock();                    // drain
  while (!accepted) {
    ASSERT_TRUE(collector
                    .PushEncodedFor(third, std::chrono::milliseconds(10),
                                    &accepted)
                    .ok());
  }
  ASSERT_TRUE(collector.Finish().ok());
  EXPECT_EQ(collector.reports_released(), 3u);
}

TEST_F(StreamingFixture, MalformedFrameFailsFinishCleanly) {
  StreamingCollector collector(mech_.get(), 1,
                               [](UserRelease) { FAIL(); });
  ASSERT_TRUE(collector.PushEncoded("definitely not a frame").ok());
  auto status = collector.Finish();
  EXPECT_FALSE(status.ok());
}

TEST_F(StreamingFixture, OutOfRangeRegionIdRejectedNotIndexed) {
  io::WireReport report;
  report.user_id = 0;
  report.trajectory_len = 2;
  report.epsilon_prime = 1.0;
  report.ngrams.push_back(core::PerturbedNgram{
      1, 2, {0, static_cast<region::RegionId>(1u << 30)}});
  StreamingCollector collector(mech_.get(), 1,
                               [](UserRelease) { FAIL(); });
  ASSERT_TRUE(collector.Push(io::ReportBatch{report}).ok());
  auto status = collector.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST_F(StreamingFixture, HugeTrajectoryLenRejectedBeforeAllocation) {
  // A well-formed frame whose report claims L = 2^32 − 1 over a single
  // covered position must be rejected by coverage validation — never
  // reaching the L-sized reconstruction problem.
  io::WireReport report;
  report.user_id = 0;
  report.trajectory_len = ~uint32_t{0};
  report.epsilon_prime = 1.0;
  report.ngrams.push_back(core::PerturbedNgram{1, 1, {0}});
  StreamingCollector collector(mech_.get(), 1,
                               [](UserRelease) { FAIL(); });
  ASSERT_TRUE(collector.Push(io::ReportBatch{report}).ok());
  auto status = collector.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(StreamingFixture, UncoveredPositionRejected) {
  io::WireReport report;
  report.user_id = 0;
  report.trajectory_len = 3;
  report.epsilon_prime = 1.0;
  // Positions 1 and 3 covered twice each; position 2 never.
  report.ngrams.push_back(core::PerturbedNgram{1, 1, {0}});
  report.ngrams.push_back(core::PerturbedNgram{1, 1, {1}});
  report.ngrams.push_back(core::PerturbedNgram{3, 3, {0}});
  report.ngrams.push_back(core::PerturbedNgram{3, 3, {1}});
  StreamingCollector collector(mech_.get(), 1,
                               [](UserRelease) { FAIL(); });
  ASSERT_TRUE(collector.Push(io::ReportBatch{report}).ok());
  auto status = collector.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("uncovered"), std::string::npos);
}

TEST_F(StreamingFixture, InconsistentNgramSpanRejected) {
  io::WireReport report;
  report.user_id = 0;
  report.trajectory_len = 3;
  report.epsilon_prime = 1.0;
  core::PerturbedNgram gram;
  gram.a = 1;
  gram.b = 2;
  gram.regions = {0};  // should be 2 regions
  report.ngrams.push_back(gram);
  StreamingCollector collector(mech_.get(), 1,
                               [](UserRelease) { FAIL(); });
  ASSERT_TRUE(collector.Push(io::ReportBatch{report}).ok());
  EXPECT_FALSE(collector.Finish().ok());
}

// Regression: dedup claimed a user id BEFORE validation, so a report
// that failed validation or reconstruction left its id poisoned in the
// dedup set — a corrected re-upload of that user would be silently
// dropped as a duplicate. The claim must be given back on failure.
TEST_F(StreamingFixture, DedupClaimRolledBackWhenReportFails) {
  io::WireReport bad;
  bad.user_id = 7;
  bad.trajectory_len = 2;
  bad.epsilon_prime = 1.0;
  bad.ngrams.push_back(core::PerturbedNgram{
      1, 2, {0, static_cast<region::RegionId>(1u << 30)}});

  StreamingCollector::Config config;
  config.dedup_user_ids = true;
  config.pre_released_user_ids = {100};  // survives the rollback
  StreamingCollector collector(mech_.get(), 1, [](UserRelease) { FAIL(); },
                               config);
  ASSERT_TRUE(collector.Push(io::ReportBatch{bad}).ok());
  auto status = collector.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  // Only the preseeded id remains claimed; user 7's claim was returned.
  EXPECT_EQ(collector.dedup_users_claimed(), 1u);
  EXPECT_EQ(collector.duplicates_dropped(), 0u);
}

// And the happy path still claims: released users stay in the set, and
// true duplicates are dropped against it.
TEST_F(StreamingFixture, DedupKeepsClaimsOfReleasedUsers) {
  const uint64_t seed = 29;
  const auto users = MakeUsers(6, 27);
  const auto reports = MakeReports(users, seed);
  StreamingCollector::Config config;
  config.dedup_user_ids = true;
  std::mutex mu;
  std::vector<UserRelease> out;
  StreamingCollector collector(
      mech_.get(), seed,
      [&](UserRelease release) {
        std::lock_guard<std::mutex> lock(mu);
        out.push_back(std::move(release));
      },
      config);
  ASSERT_TRUE(collector.Push(reports).ok());
  ASSERT_TRUE(collector.Push(reports).ok());  // full replay: all dupes
  ASSERT_TRUE(collector.Finish().ok());
  EXPECT_EQ(out.size(), users.size());
  EXPECT_EQ(collector.dedup_users_claimed(), users.size());
  EXPECT_EQ(collector.duplicates_dropped(), users.size());
}

// FanOutSink: every target sees every release, in registration order,
// under the collector's sink serialisation.
TEST_F(StreamingFixture, FanOutSinkForwardsToEveryTarget) {
  const uint64_t seed = 31;
  const auto users = MakeUsers(8, 33);
  const auto reports = MakeReports(users, seed);
  std::vector<UserRelease> first, second;
  size_t order_violations = 0;
  StreamingCollector collector(
      mech_.get(), seed,
      StreamingCollector::FanOutSink(
          {[&](UserRelease release) { first.push_back(std::move(release)); },
           StreamingCollector::Sink(),  // null sinks are skipped
           [&](UserRelease release) {
             // The copy target already ran for this release.
             if (first.size() != second.size() + 1) ++order_violations;
             second.push_back(std::move(release));
           }}));
  ASSERT_TRUE(collector.Push(reports).ok());
  ASSERT_TRUE(collector.Finish().ok());
  ASSERT_EQ(first.size(), users.size());
  ASSERT_EQ(second.size(), users.size());
  EXPECT_EQ(order_violations, 0u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].user_id, second[i].user_id);
    EXPECT_EQ(first[i].release.trajectory, second[i].release.trajectory);
  }
}

TEST_F(StreamingFixture, PushAfterFinishFails) {
  StreamingCollector collector(mech_.get(), 1, [](UserRelease) {});
  ASSERT_TRUE(collector.Finish().ok());
  EXPECT_FALSE(collector.Push(io::ReportBatch{}).ok());
  EXPECT_FALSE(collector.PushEncoded("x").ok());
}

TEST_F(StreamingFixture, FinishIsIdempotent) {
  const auto users = MakeUsers(4, 21);
  const auto reports = MakeReports(users, 2);
  std::vector<UserRelease> out;
  StreamingCollector collector(
      mech_.get(), 2,
      [&out](UserRelease release) { out.push_back(std::move(release)); });
  ASSERT_TRUE(collector.Push(reports).ok());
  ASSERT_TRUE(collector.Finish().ok());
  ASSERT_TRUE(collector.Finish().ok());
  EXPECT_EQ(out.size(), users.size());
}

// ---------- ShardPlan / MergeShardReleases ----------

TEST(ShardPlanTest, ModuloRoutingCoversAllShards) {
  const ShardPlan plan{3};
  std::vector<size_t> counts(3, 0);
  for (uint64_t id = 0; id < 30; ++id) {
    const size_t shard = plan.ShardOf(id);
    ASSERT_LT(shard, 3u);
    ++counts[shard];
  }
  for (size_t s = 0; s < 3; ++s) EXPECT_EQ(counts[s], 10u);
  EXPECT_EQ(ShardPlan{1}.ShardOf(999), 0u);
  EXPECT_EQ(ShardPlan{0}.ShardOf(999), 0u);  // degenerate plan: one shard
}

TEST(ShardPlanTest, RangeStrategyAssignsContiguousBlocks) {
  ShardPlan plan;
  plan.num_shards = 4;
  plan.strategy = ShardPlan::Strategy::kRange;
  plan.num_users = 10;  // blocks of ceil(10/4) = 3: [0,3) [3,6) [6,9) [9,10)
  EXPECT_EQ(plan.RangeOf(0), (std::pair<uint64_t, uint64_t>{0, 3}));
  EXPECT_EQ(plan.RangeOf(1), (std::pair<uint64_t, uint64_t>{3, 6}));
  EXPECT_EQ(plan.RangeOf(2), (std::pair<uint64_t, uint64_t>{6, 9}));
  EXPECT_EQ(plan.RangeOf(3), (std::pair<uint64_t, uint64_t>{9, 10}));
  for (uint64_t id = 0; id < plan.num_users; ++id) {
    const size_t shard = plan.ShardOf(id);
    const auto [lo, hi] = plan.RangeOf(shard);
    EXPECT_GE(id, lo) << "id " << id;
    EXPECT_LT(id, hi) << "id " << id;
  }
  // Ids past the population still route to a valid shard (merge rejects
  // them); far-past ids clamp to the last one.
  EXPECT_EQ(plan.ShardOf(99), 3u);
}

TEST(ShardPlanTest, RangeStrategySupportsMoreShardsThanUsers) {
  ShardPlan plan;
  plan.num_shards = 4;
  plan.strategy = ShardPlan::Strategy::kRange;
  plan.num_users = 2;
  EXPECT_EQ(plan.ShardOf(0), 0u);
  EXPECT_EQ(plan.ShardOf(1), 1u);
  EXPECT_EQ(plan.RangeOf(2), (std::pair<uint64_t, uint64_t>{2, 2}));
  EXPECT_EQ(plan.RangeOf(3), (std::pair<uint64_t, uint64_t>{2, 2}));
}

TEST(ShardPlanTest, ModuloRangeOfIsTheWholePopulation) {
  ShardPlan plan;
  plan.num_shards = 3;
  plan.num_users = 30;
  EXPECT_EQ(plan.RangeOf(1), (std::pair<uint64_t, uint64_t>{0, 30}));
  // num_users unset (valid for modulo routing): the validator interval
  // must be "everything", never the empty [0, 0) that rejects all input.
  ShardPlan unset;
  unset.num_shards = 3;
  EXPECT_EQ(unset.RangeOf(0),
            (std::pair<uint64_t, uint64_t>{0, ~uint64_t{0}}));
}

TEST(ShardPlanTest, PartitionByShardRoutesByUserId) {
  io::ReportBatch reports(7);
  for (size_t i = 0; i < reports.size(); ++i) reports[i].user_id = i;
  auto sharded = PartitionByShard(ShardPlan{2}, std::move(reports));
  ASSERT_EQ(sharded.size(), 2u);
  EXPECT_EQ(sharded[0].size(), 4u);  // users 0, 2, 4, 6
  EXPECT_EQ(sharded[1].size(), 3u);  // users 1, 3, 5
  for (const auto& report : sharded[0]) EXPECT_EQ(report.user_id % 2, 0u);
  for (const auto& report : sharded[1]) EXPECT_EQ(report.user_id % 2, 1u);
}

std::vector<std::vector<UserRelease>> TwoShardReleases() {
  std::vector<std::vector<UserRelease>> shards(2);
  for (uint64_t id : {0u, 2u}) {
    UserRelease r;
    r.user_id = id;
    shards[0].push_back(std::move(r));
  }
  UserRelease r;
  r.user_id = 1;
  shards[1].push_back(std::move(r));
  return shards;
}

TEST(MergeShardReleasesTest, MergesDenseUsers) {
  auto merged = MergeShardReleases(TwoShardReleases(), 3);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged->size(), 3u);
}

TEST(MergeShardReleasesTest, MissingUserReported) {
  auto merged = MergeShardReleases(TwoShardReleases(), 4);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kNotFound);
  EXPECT_NE(merged.status().message().find("user 3"), std::string::npos);
}

TEST(MergeShardReleasesTest, DuplicateUserReported) {
  auto shards = TwoShardReleases();
  UserRelease dup;
  dup.user_id = 2;
  shards[1].push_back(std::move(dup));
  auto merged = MergeShardReleases(std::move(shards), 3);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

TEST(MergeShardReleasesTest, OutOfRangeUserReported) {
  auto shards = TwoShardReleases();
  UserRelease big;
  big.user_id = 99;
  shards[0].push_back(std::move(big));
  auto merged = MergeShardReleases(std::move(shards), 3);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace trajldp::core
