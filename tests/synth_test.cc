#include <gtest/gtest.h>

#include <set>

#include "eval/dataset.h"
#include "hierarchy/builtin_hierarchies.h"
#include "model/reachability.h"
#include "synth/campus.h"
#include "synth/city_model.h"
#include "synth/safegraph.h"
#include "synth/taxi_foursquare.h"

namespace trajldp::synth {
namespace {

// ---------- City model ----------

TEST(CityModelTest, GeneratesRequestedPois) {
  CityModelConfig config;
  config.num_pois = 300;
  auto db = GenerateCity(config, hierarchy::BuiltinFoursquareLike());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 300u);
  // Every POI has a leaf category and positive popularity.
  for (const model::Poi& poi : db->pois()) {
    EXPECT_TRUE(db->categories().is_leaf(poi.category));
    EXPECT_GT(poi.popularity, 0.0);
    EXPECT_GT(poi.hours.OpenMinutesPerDay(), 0);
  }
}

TEST(CityModelTest, DeterministicPerSeed) {
  CityModelConfig config;
  config.num_pois = 50;
  auto a = GenerateCity(config, hierarchy::BuiltinFoursquareLike());
  auto b = GenerateCity(config, hierarchy::BuiltinFoursquareLike());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->poi(i).location, b->poi(i).location);
    EXPECT_EQ(a->poi(i).category, b->poi(i).category);
  }
}

TEST(CityModelTest, PopularityIsSkewed) {
  CityModelConfig config;
  config.num_pois = 1000;
  auto db = GenerateCity(config, hierarchy::BuiltinFoursquareLike());
  ASSERT_TRUE(db.ok());
  double max_pop = 0.0, total = 0.0;
  for (const model::Poi& poi : db->pois()) {
    max_pop = std::max(max_pop, poi.popularity);
    total += poi.popularity;
  }
  // Zipf: the single most popular POI holds a noticeable share.
  EXPECT_GT(max_pop / total, 0.05);
}

TEST(CityModelTest, OpeningHoursTemplates) {
  EXPECT_EQ(OpeningHoursTemplate("Travel & Transport").OpenMinutesPerDay(),
            model::kMinutesPerDay);
  const auto nightlife = OpeningHoursTemplate("Nightlife Spot");
  EXPECT_TRUE(nightlife.IsOpenAtMinute(23 * 60));
  EXPECT_TRUE(nightlife.IsOpenAtMinute(60));   // wraps past midnight
  EXPECT_FALSE(nightlife.IsOpenAtMinute(12 * 60));
  const auto office = OpeningHoursTemplate("Professional & Other Places");
  EXPECT_FALSE(office.IsOpenAtMinute(3 * 60));
}

TEST(CityModelTest, RejectsBadConfig) {
  CityModelConfig config;
  config.num_pois = 0;
  EXPECT_FALSE(
      GenerateCity(config, hierarchy::BuiltinFoursquareLike()).ok());
}

// ---------- Dataset-level checks (generator + filter round trips) ----------

class DatasetTest : public ::testing::TestWithParam<int> {};

TEST_P(DatasetTest, AllTrajectoriesFeasibleAfterFilter) {
  eval::DatasetOptions options;
  options.num_pois = 250;
  options.num_trajectories = 60;
  options.seed = 11;
  StatusOr<eval::Dataset> dataset = [&]() -> StatusOr<eval::Dataset> {
    switch (GetParam()) {
      case 0:
        return eval::MakeTaxiFoursquareDataset(options);
      case 1:
        return eval::MakeSafegraphDataset(options);
      default:
        return eval::MakeCampusDataset(options);
    }
  }();
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_GT(dataset->trajectories.size(), options.num_trajectories / 2);

  const model::Reachability checker(&dataset->db, dataset->time,
                                    dataset->reachability);
  for (const auto& traj : dataset->trajectories) {
    EXPECT_TRUE(checker.CheckFeasible(traj).ok());
    EXPECT_GE(traj.size(), 2u);
    EXPECT_LE(traj.size(), 8u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("TaxiFoursquare");
                             case 1:
                               return std::string("Safegraph");
                             default:
                               return std::string("Campus");
                           }
                         });

// ---------- Safegraph specifics ----------

TEST(SafegraphTest, TimeOfDayProfilesPeakSensibly) {
  // Restaurants peak at dinner, not at 4 am.
  EXPECT_GT(TimeOfDayMultiplier("Accommodation & Food Services", 19 * 60),
            TimeOfDayMultiplier("Accommodation & Food Services", 4 * 60));
  // Transit peaks in the AM commute vs midday.
  EXPECT_GT(TimeOfDayMultiplier("Transportation & Warehousing", 8 * 60 + 30),
            TimeOfDayMultiplier("Transportation & Warehousing", 13 * 60));
  // Multipliers stay positive everywhere.
  for (int minute = 0; minute < model::kMinutesPerDay; minute += 60) {
    EXPECT_GT(TimeOfDayMultiplier("Retail Trade", minute), 0.0);
  }
}

TEST(SafegraphTest, TrajectoriesFollowRecipeBounds) {
  SafegraphConfig config;
  config.city.num_pois = 200;
  config.num_trajectories = 40;
  auto db = BuildSafegraphPois(config);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  auto trajectories = GenerateSafegraphTrajectories(*db, time, config);
  ASSERT_TRUE(trajectories.ok());
  EXPECT_EQ(trajectories->size(), 40u);
  for (const auto& traj : *trajectories) {
    EXPECT_GE(traj.size(), 3u);
    EXPECT_LE(traj.size(), 8u);
    // Start time within U(6:00, 22:00).
    const int start_minute = time.TimestepToMinute(traj.point(0).t);
    EXPECT_GE(start_minute, 6 * 60 - 10);
    EXPECT_LE(start_minute, 22 * 60 + 10);
  }
}

// ---------- Campus specifics ----------

TEST(CampusTest, BuildsPaperScaleCampus) {
  CampusConfig config;
  auto db = BuildCampusPois(config);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 262u);
  // Nine leaf categories, all used.
  std::set<hierarchy::CategoryId> used;
  for (const model::Poi& poi : db->pois()) used.insert(poi.category);
  EXPECT_EQ(used.size(), 9u);
  auto events = FindCampusEventPois(*db);
  ASSERT_TRUE(events.ok());
  EXPECT_NE(events->residence_a, model::kInvalidPoi);
  EXPECT_NE(events->stadium_a, model::kInvalidPoi);
}

TEST(CampusTest, InducedEventsArePresent) {
  CampusConfig config;
  config.num_trajectories = 700;
  config.event_residence_count = 100;
  config.event_stadium_count = 200;
  config.event_academic_count = 300;
  auto db = BuildCampusPois(config);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  auto trajectories = GenerateCampusTrajectories(*db, time, config);
  ASSERT_TRUE(trajectories.ok());
  auto events = FindCampusEventPois(*db);
  ASSERT_TRUE(events.ok());

  // Count trajectories visiting Residence A between 20:00 and 22:00 and
  // Stadium A between 14:00 and 16:00.
  size_t residence_visits = 0, stadium_visits = 0;
  for (const auto& traj : *trajectories) {
    for (const auto& pt : traj.points()) {
      const int minute = time.TimestepToMinute(pt.t);
      if (pt.poi == events->residence_a && minute >= 20 * 60 &&
          minute < 22 * 60) {
        ++residence_visits;
        break;
      }
    }
  }
  for (const auto& traj : *trajectories) {
    for (const auto& pt : traj.points()) {
      const int minute = time.TimestepToMinute(pt.t);
      if (pt.poi == events->stadium_a && minute >= 14 * 60 &&
          minute < 16 * 60) {
        ++stadium_visits;
        break;
      }
    }
  }
  EXPECT_GE(residence_visits, 100u);
  EXPECT_GE(stadium_visits, 200u);
}

TEST(CampusTest, EventCountsMustFit) {
  CampusConfig config;
  config.num_trajectories = 10;
  config.event_residence_count = 20;
  auto db = BuildCampusPois(config);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  EXPECT_FALSE(GenerateCampusTrajectories(*db, time, config).ok());
}

// ---------- Taxi-Foursquare specifics ----------

TEST(TaxiFoursquareTest, NextPoiRespectsReachabilityAtGenerationSpeed) {
  TaxiFoursquareConfig config;
  config.city.num_pois = 200;
  config.num_trajectories = 30;
  auto db = BuildTaxiFoursquarePois(config);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  auto trajectories = GenerateTaxiFoursquareTrajectories(*db, time, config);
  ASSERT_TRUE(trajectories.ok());
  for (const auto& traj : *trajectories) {
    for (size_t i = 1; i < traj.size(); ++i) {
      const double gap_hours =
          time.GapMinutes(traj.point(i - 1).t, traj.point(i).t) / 60.0;
      EXPECT_LE(db->DistanceKm(traj.point(i - 1).poi, traj.point(i).poi),
                config.speed_kmh * gap_hours + 1e-9);
      // The cleaning step forbids consecutive repeats.
      EXPECT_NE(traj.point(i).poi, traj.point(i - 1).poi);
    }
  }
}

}  // namespace
}  // namespace trajldp::synth
