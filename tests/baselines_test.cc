#include <gtest/gtest.h>

#include "baselines/independent.h"
#include "baselines/ngram_no_hierarchy.h"
#include "baselines/phys_dist.h"
#include "baselines/poi_level_ngram.h"
#include "test_world.h"

namespace trajldp::baselines {
namespace {

using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

class BaselinesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 5;
    options.cols = 5;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);
    reach_.speed_kmh = 8.0;
    reach_.reference_gap_minutes = 60;
  }

  model::Trajectory SampleInput() const {
    return MakeTrajectory({{0, 54}, {6, 60}, {12, 72}, {18, 84}});
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  model::ReachabilityConfig reach_;
};

// ---------- IndependentMechanism ----------

TEST_F(BaselinesFixture, IndNoReachProducesValidOrderedOutput) {
  IndependentMechanism::Config config;
  config.epsilon = 5.0;
  config.reachability = reach_;
  config.respect_reachability = false;
  auto mech = IndependentMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  Rng rng(3);
  core::StageBreakdown stages;
  auto output = mech->Perturb(SampleInput(), rng, &stages);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->size(), 4u);
  EXPECT_TRUE(output->Validate(time_).ok());
  // IndNoReach spends time in post-processing (smoothing) — the paper's
  // Table 3 'Other' column.
  EXPECT_GT(stages.other_seconds, 0.0);
}

TEST_F(BaselinesFixture, IndNoReachOutputReachableAfterSmoothing) {
  IndependentMechanism::Config config;
  config.epsilon = 5.0;
  config.reachability = reach_;
  config.respect_reachability = false;
  auto mech = IndependentMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  const model::Reachability checker(db_.get(), time_, reach_);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    auto output = mech->Perturb(SampleInput(), rng);
    ASSERT_TRUE(output.ok());
    // Smoothing guarantees time order and reachability (not hours; the
    // grid world is always-open so CheckFeasible covers everything).
    EXPECT_TRUE(checker.CheckFeasible(*output).ok()) << "seed " << seed;
  }
}

TEST_F(BaselinesFixture, IndReachOutputFeasibleByConstruction) {
  IndependentMechanism::Config config;
  config.epsilon = 5.0;
  config.reachability = reach_;
  config.respect_reachability = true;
  auto mech = IndependentMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  const model::Reachability checker(db_.get(), time_, reach_);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    auto output = mech->Perturb(SampleInput(), rng);
    ASSERT_TRUE(output.ok());
    EXPECT_TRUE(checker.CheckFeasible(*output).ok()) << "seed " << seed;
  }
}

TEST_F(BaselinesFixture, IndependentDeterministicPerSeed) {
  IndependentMechanism::Config config;
  config.epsilon = 5.0;
  config.reachability = reach_;
  auto mech = IndependentMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  Rng rng1(9), rng2(9);
  auto a = mech->Perturb(SampleInput(), rng1);
  auto b = mech->Perturb(SampleInput(), rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(BaselinesFixture, IndependentHighEpsilonStaysClose) {
  IndependentMechanism::Config config;
  config.epsilon = 2000.0;
  config.reachability = reach_;
  auto mech = IndependentMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  const model::SemanticDistance dist(db_.get(), time_);
  const auto input = SampleInput();
  Rng rng(13);
  auto output = mech->Perturb(input, rng);
  ASSERT_TRUE(output.ok());
  // With an enormous budget each point lands on (or next to) the truth.
  EXPECT_LT(dist.BetweenTrajectories(input, *output) /
                static_cast<double>(input.size()),
            1.0);
}

// ---------- PoiLevelNgramMechanism (NGramNoH / PhysDist) ----------

TEST_F(BaselinesFixture, NGramNoHProducesValidOutput) {
  NGramNoHConfig config;
  config.epsilon = 5.0;
  config.reachability = reach_;
  auto mech = BuildNGramNoH(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  const model::Reachability checker(db_.get(), time_, reach_);
  Rng rng(15);
  core::StageBreakdown stages;
  auto output = mech->Perturb(SampleInput(), rng, &stages);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->size(), 4u);
  EXPECT_TRUE(output->Validate(time_).ok());
  EXPECT_TRUE(checker.CheckFeasible(*output).ok());
  EXPECT_GT(stages.perturb_seconds, 0.0);
  EXPECT_GT(stages.optimal_reconstruct_seconds, 0.0);
}

TEST_F(BaselinesFixture, PhysDistProducesValidOutput) {
  PhysDistConfig config;
  config.epsilon = 5.0;
  config.reachability = reach_;
  auto mech = BuildPhysDist(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  Rng rng(17);
  auto output = mech->Perturb(SampleInput(), rng);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->size(), 4u);
  EXPECT_TRUE(output->Validate(time_).ok());
}

TEST_F(BaselinesFixture, BudgetSplitFormula) {
  NGramNoHConfig config;
  config.n = 2;
  config.epsilon = 9.0;
  config.reachability = reach_;
  auto mech = BuildNGramNoH(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  // ε′ = ε / (2|τ| + n − 1) = 9 / (8 + 1) = 1.
  EXPECT_DOUBLE_EQ(mech->EpsilonPerPerturbation(4), 1.0);
}

TEST_F(BaselinesFixture, PoiGraphExcludesSelfAndRespectsTheta) {
  PhysDistConfig config;
  config.epsilon = 5.0;
  config.reachability.speed_kmh = 2.0;  // θ = 2 km at 60-minute gap
  config.reachability.reference_gap_minutes = 60;
  auto mech = BuildPhysDist(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  const double theta = config.reachability.ReferenceThetaKm();
  for (model::PoiId p = 0; p < db_->size(); ++p) {
    for (uint32_t q : mech->Neighbors(p)) {
      EXPECT_NE(q, p);
      EXPECT_LE(db_->DistanceKm(p, q), theta + 1e-9);
    }
  }
  EXPECT_GT(mech->num_edges(), 0u);
}

TEST_F(BaselinesFixture, UnconstrainedPoiGraphIsComplete) {
  PhysDistConfig config;
  config.epsilon = 5.0;
  config.reachability = model::ReachabilityConfig::Unconstrained();
  auto mech = BuildPhysDist(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  EXPECT_EQ(mech->num_edges(), db_->size() * (db_->size() - 1));
}

TEST_F(BaselinesFixture, PhysDistIgnoresCategoriesNGramNoHDoesNot) {
  // Statistical check: NGramNoH should match the input's category better
  // than PhysDist, because its quality function includes d_c. Uses a
  // compact world (so d_c dominates the quality diameter), a generous
  // budget, and many seeds to keep the check stable.
  trajldp::testing::GridWorldOptions options;
  options.rows = 5;
  options.cols = 5;
  options.spacing_km = 0.4;
  auto db_small = MakeGridWorld(options);
  ASSERT_TRUE(db_small.ok());

  NGramNoHConfig nh;
  nh.epsilon = 20.0;
  nh.reachability = reach_;
  PhysDistConfig pd;
  pd.epsilon = 20.0;
  pd.reachability = reach_;
  auto ngram_noh = BuildNGramNoH(&*db_small, time_, nh);
  auto phys = BuildPhysDist(&*db_small, time_, pd);
  ASSERT_TRUE(ngram_noh.ok());
  ASSERT_TRUE(phys.ok());

  const model::SemanticDistance dist(&*db_small, time_);
  const auto input = SampleInput();
  double dc_noh = 0.0, dc_phys = 0.0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng1(seed), rng2(seed);
    auto a = ngram_noh->Perturb(input, rng1);
    auto b = phys->Perturb(input, rng2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    for (size_t i = 0; i < input.size(); ++i) {
      dc_noh += dist.Category(input.point(i).poi, a->point(i).poi);
      dc_phys += dist.Category(input.point(i).poi, b->point(i).poi);
    }
  }
  EXPECT_LT(dc_noh, dc_phys);
}

TEST_F(BaselinesFixture, PoiLevelDeterministicPerSeed) {
  NGramNoHConfig config;
  config.epsilon = 5.0;
  config.reachability = reach_;
  auto mech = BuildNGramNoH(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  Rng rng1(21), rng2(21);
  auto a = mech->Perturb(SampleInput(), rng1);
  auto b = mech->Perturb(SampleInput(), rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(BaselinesFixture, ConfigValidation) {
  IndependentMechanism::Config bad;
  bad.epsilon = 0.0;
  EXPECT_FALSE(IndependentMechanism::Build(db_.get(), time_, bad).ok());

  PoiLevelNgramMechanism::Config bad2;
  bad2.n = 0;
  EXPECT_FALSE(PoiLevelNgramMechanism::Build(db_.get(), time_, bad2).ok());
}

}  // namespace
}  // namespace trajldp::baselines
