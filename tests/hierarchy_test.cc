#include <gtest/gtest.h>

#include "hierarchy/builtin_hierarchies.h"
#include "hierarchy/category_distance.h"
#include "hierarchy/category_tree.h"

namespace trajldp::hierarchy {
namespace {

// Builds the small reference tree used throughout these tests:
//   L1: food            L1: transit
//   L2: restaurant, cafe     L2: station
//   L3: restaurant/{pizza, sushi}, cafe/{espresso}, station/{subway}
struct SmallTree {
  CategoryTree tree;
  CategoryId food, transit;
  CategoryId restaurant, cafe, station;
  CategoryId pizza, sushi, espresso, subway;

  SmallTree() {
    food = tree.AddRoot("Food");
    transit = tree.AddRoot("Transit");
    restaurant = tree.AddChild(food, "Restaurant");
    cafe = tree.AddChild(food, "Cafe");
    station = tree.AddChild(transit, "Station");
    pizza = tree.AddChild(restaurant, "Pizza Place");
    sushi = tree.AddChild(restaurant, "Sushi Bar");
    espresso = tree.AddChild(cafe, "Espresso Bar");
    subway = tree.AddChild(station, "Subway Stop");
  }
};

TEST(CategoryTreeTest, LevelsFollowParentChain) {
  SmallTree t;
  EXPECT_EQ(t.tree.level(t.food), 1);
  EXPECT_EQ(t.tree.level(t.restaurant), 2);
  EXPECT_EQ(t.tree.level(t.pizza), 3);
}

TEST(CategoryTreeTest, ParentsAndChildren) {
  SmallTree t;
  EXPECT_EQ(t.tree.parent(t.pizza), t.restaurant);
  EXPECT_EQ(t.tree.parent(t.food), kInvalidCategory);
  EXPECT_EQ(t.tree.children(t.restaurant).size(), 2u);
  EXPECT_TRUE(t.tree.is_leaf(t.pizza));
  EXPECT_FALSE(t.tree.is_leaf(t.food));
}

TEST(CategoryTreeTest, LeavesAndLevels) {
  SmallTree t;
  EXPECT_EQ(t.tree.Leaves().size(), 4u);
  EXPECT_EQ(t.tree.NodesAtLevel(1).size(), 2u);
  EXPECT_EQ(t.tree.NodesAtLevel(2).size(), 3u);
  EXPECT_EQ(t.tree.NodesAtLevel(3).size(), 4u);
}

TEST(CategoryTreeTest, AncestorAtLevel) {
  SmallTree t;
  EXPECT_EQ(t.tree.AncestorAtLevel(t.pizza, 1), t.food);
  EXPECT_EQ(t.tree.AncestorAtLevel(t.pizza, 2), t.restaurant);
  EXPECT_EQ(t.tree.AncestorAtLevel(t.pizza, 3), t.pizza);
  EXPECT_EQ(t.tree.AncestorAtLevel(t.food, 2), kInvalidCategory);
  EXPECT_EQ(t.tree.AncestorAtLevel(t.pizza, 0), kInvalidCategory);
}

TEST(CategoryTreeTest, IsAncestorOrSelf) {
  SmallTree t;
  EXPECT_TRUE(t.tree.IsAncestorOrSelf(t.food, t.pizza));
  EXPECT_TRUE(t.tree.IsAncestorOrSelf(t.pizza, t.pizza));
  EXPECT_FALSE(t.tree.IsAncestorOrSelf(t.transit, t.pizza));
  EXPECT_FALSE(t.tree.IsAncestorOrSelf(t.pizza, t.food));
}

TEST(CategoryTreeTest, LowestCommonAncestor) {
  SmallTree t;
  EXPECT_EQ(t.tree.LowestCommonAncestor(t.pizza, t.sushi), t.restaurant);
  EXPECT_EQ(t.tree.LowestCommonAncestor(t.pizza, t.espresso), t.food);
  EXPECT_EQ(t.tree.LowestCommonAncestor(t.pizza, t.subway),
            kInvalidCategory);
  EXPECT_EQ(t.tree.LowestCommonAncestor(t.pizza, t.restaurant),
            t.restaurant);
  EXPECT_EQ(t.tree.LowestCommonAncestor(t.food, t.food), t.food);
}

TEST(CategoryTreeTest, FindByName) {
  SmallTree t;
  auto found = t.tree.FindByName("Cafe");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, t.cafe);
  EXPECT_EQ(t.tree.FindByName("Nonexistent").status().code(),
            StatusCode::kNotFound);
}

// ---------- Figure 5 distances ----------

TEST(CategoryDistanceTest, Figure5AnchorValues) {
  SmallTree t;
  CategoryDistance d(&t.tree);
  // Same node.
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.pizza), 0.0);
  // Sibling leaves under the same level-2 parent.
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.sushi), 2.0);
  // Leaf to its own level-2 parent.
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.restaurant), 3.5);
  // Leaf to an uncle level-2 node (same level-1).
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.cafe), 5.0);
  // Leaf to its level-1 ancestor.
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.food), 6.5);
  // Cousin leaves: same level-1, different level-2.
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.espresso), 8.0);
  // Unrelated: no shared level-1 category (dotted line in Figure 5).
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.subway), 10.0);
}

TEST(CategoryDistanceTest, Level2Siblings) {
  SmallTree t;
  CategoryDistance d(&t.tree);
  // Two level-2 nodes under the same level-1 node score `uncle`.
  EXPECT_DOUBLE_EQ(d.Between(t.restaurant, t.cafe), 5.0);
  // Level-2 to its level-1 parent is parent_child.
  EXPECT_DOUBLE_EQ(d.Between(t.restaurant, t.food), 3.5);
}

TEST(CategoryDistanceTest, SymmetricOverAllPairs) {
  SmallTree t;
  CategoryDistance d(&t.tree);
  for (CategoryId a = 0; a < t.tree.num_nodes(); ++a) {
    for (CategoryId b = 0; b < t.tree.num_nodes(); ++b) {
      EXPECT_DOUBLE_EQ(d.Between(a, b), d.Between(b, a))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(CategoryDistanceTest, BoundedByMaxDistance) {
  SmallTree t;
  CategoryDistance d(&t.tree);
  EXPECT_DOUBLE_EQ(d.MaxDistance(), 10.0);
  for (CategoryId a = 0; a < t.tree.num_nodes(); ++a) {
    for (CategoryId b = 0; b < t.tree.num_nodes(); ++b) {
      EXPECT_LE(d.Between(a, b), d.MaxDistance());
      EXPECT_GE(d.Between(a, b), 0.0);
    }
  }
}

TEST(CategoryDistanceTest, InvalidIdsAreUnrelated) {
  SmallTree t;
  CategoryDistance d(&t.tree);
  EXPECT_DOUBLE_EQ(d.Between(kInvalidCategory, t.pizza), 10.0);
}

TEST(CategoryDistanceTest, CustomTable) {
  SmallTree t;
  CategoryDistanceTable table;
  table.sibling_leaf = 1.0;
  table.unrelated = 99.0;
  CategoryDistance d(&t.tree, table);
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.sushi), 1.0);
  EXPECT_DOUBLE_EQ(d.Between(t.pizza, t.subway), 99.0);
  EXPECT_DOUBLE_EQ(d.MaxDistance(), 99.0);
}

// ---------- Builtin hierarchies ----------

TEST(BuiltinHierarchiesTest, FoursquareLikeShape) {
  const CategoryTree tree = BuiltinFoursquareLike();
  EXPECT_EQ(tree.NodesAtLevel(1).size(), 10u);
  EXPECT_EQ(tree.NodesAtLevel(2).size(), 30u);
  EXPECT_EQ(tree.NodesAtLevel(3).size(), 90u);
  EXPECT_EQ(tree.num_nodes(), 130u);
  // All leaves are level 3.
  for (CategoryId leaf : tree.Leaves()) {
    EXPECT_EQ(tree.level(leaf), 3);
  }
}

TEST(BuiltinHierarchiesTest, NaicsLikeShape) {
  const CategoryTree tree = BuiltinNaicsLike();
  EXPECT_EQ(tree.NodesAtLevel(1).size(), 10u);
  EXPECT_EQ(tree.NodesAtLevel(2).size(), 30u);
  EXPECT_EQ(tree.NodesAtLevel(3).size(), 90u);
}

TEST(BuiltinHierarchiesTest, CampusShape) {
  const CategoryTree tree = BuiltinCampus();
  EXPECT_EQ(tree.NodesAtLevel(1).size(), 3u);
  // The paper's nine campus categories are the leaves.
  EXPECT_EQ(tree.Leaves().size(), 9u);
  for (CategoryId leaf : tree.Leaves()) {
    EXPECT_EQ(tree.level(leaf), 2);
  }
}

TEST(BuiltinHierarchiesTest, UnrelatedAcrossDomains) {
  const CategoryTree tree = BuiltinFoursquareLike();
  CategoryDistance d(&tree);
  auto food = tree.FindByName("Food");
  auto nightlife = tree.FindByName("Nightlife Spot");
  ASSERT_TRUE(food.ok());
  ASSERT_TRUE(nightlife.ok());
  EXPECT_DOUBLE_EQ(d.Between(*food, *nightlife), 10.0);
}

}  // namespace
}  // namespace trajldp::hierarchy
