#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/admin_server.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/snapshot_writer.h"

namespace trajldp::obs {
namespace {

bool WaitFor(const std::function<bool()>& condition,
             std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ------------------------------------------------------------ registry

TEST(MetricsRegistryTest, GetIsIdempotentPerNameAndLabels) {
  Registry registry;
  Counter* a = registry.GetCounter("frames_total", "frames");
  Counter* b = registry.GetCounter("frames_total", "frames");
  EXPECT_EQ(a, b);
  Counter* shard0 =
      registry.GetCounter("frames_total", "frames", {{"shard", "0"}});
  EXPECT_NE(a, shard0);
  EXPECT_EQ(registry.num_metrics(), 2u);
}

TEST(MetricsRegistryTest, LabelsAreCanonicalizedByKey) {
  Registry registry;
  Counter* a = registry.GetCounter("c_total", "help",
                                   {{"b", "2"}, {"a", "1"}});
  Counter* b = registry.GetCounter("c_total", "help",
                                   {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.num_metrics(), 1u);
}

TEST(MetricsRegistryTest, TypeConflictReturnsBlackhole) {
  Registry registry;
  Counter* counter = registry.GetCounter("x", "first registration wins");
  counter->Add(7);
  // Same name, different type: a usable (non-null) instrument whose
  // writes vanish — a telemetry name clash must never crash a server.
  Gauge* gauge = registry.GetGauge("x", "conflicting");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(123.0);
  RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 1u);
  EXPECT_EQ(snapshot.metrics[0].type, MetricType::kCounter);
  EXPECT_DOUBLE_EQ(snapshot.metrics[0].value, 7.0);
}

TEST(MetricsRegistryTest, HistogramBoundsConflictReturnsBlackhole) {
  Registry registry;
  Histogram* first = registry.GetHistogram("h", "help", {1.0, 2.0});
  // Equal bounds in any order are the same series...
  Histogram* same = registry.GetHistogram("h", "help", {2.0, 1.0});
  EXPECT_EQ(first, same);
  // ...different bounds are a conflict: observations must not land in
  // the wrong buckets, so they land nowhere.
  Histogram* conflict = registry.GetHistogram("h", "help", {1.0, 2.0, 3.0});
  ASSERT_NE(conflict, nullptr);
  EXPECT_NE(conflict, first);
  conflict->Observe(1.5);
  const MetricSnapshot* m = registry.Snapshot().Find("h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 0u);
}

// ----------------------------------------------------------- histogram

TEST(MetricsHistogramTest, BucketBoundsAreInclusiveUpperBounds) {
  Histogram hist({1.0, 2.0, 5.0});
  hist.Observe(0.0);   // <= 1   -> bucket 0
  hist.Observe(1.0);   // == 1   -> bucket 0 (le is inclusive)
  hist.Observe(1.001); // <= 2   -> bucket 1
  hist.Observe(2.0);   // == 2   -> bucket 1
  hist.Observe(5.0);   // == 5   -> bucket 2
  hist.Observe(5.001); // > 5    -> +Inf overflow
  const std::vector<std::uint64_t> buckets = hist.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(hist.Count(), 6u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 0.0 + 1.0 + 1.001 + 2.0 + 5.0 + 5.001);
}

TEST(MetricsHistogramTest, BoundsAreSortedAndDeduplicated) {
  Histogram hist({5.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(hist.bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
}

TEST(MetricsHistogramTest, EmptyBoundsFallBackToDefaultLatency) {
  Histogram hist({});
  EXPECT_EQ(hist.bounds(), DefaultLatencyBounds());
}

// --------------------------------------------------------- concurrency

TEST(MetricsConcurrencyTest, SnapshotUnderConcurrentIncrements) {
  Registry registry;
  Counter* counter = registry.GetCounter("spin_total", "concurrent adds");
  Histogram* hist =
      registry.GetHistogram("spin_seconds", "concurrent observes", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        hist->Observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Scrape while the writers run: every snapshot must be internally
  // sane (never above the final total) and monotonically nondecreasing.
  std::uint64_t last = 0;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  for (int i = 0; i < 50; ++i) {
    const MetricSnapshot* m = registry.Snapshot().Find("spin_total");
    ASSERT_NE(m, nullptr);
    const auto value = static_cast<std::uint64_t>(m->value);
    EXPECT_GE(value, last);
    EXPECT_LE(value, expected);
    last = value;
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), expected);
  EXPECT_EQ(hist->Count(), expected);
  const std::vector<std::uint64_t> buckets = hist->BucketCounts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], expected / 2);  // 0.25 observations
  EXPECT_EQ(buckets[1], expected / 2);  // 0.75 overflow
}

// --------------------------------------------------------------- merge

TEST(MetricsMergeTest, MergeSumsMatchingSeriesAndUnionsRest) {
  Registry shard0;
  Registry shard1;
  shard0.GetCounter("shared_total", "shared")->Add(5);
  shard1.GetCounter("shared_total", "shared")->Add(7);
  shard0.GetCounter("only0_total", "only shard 0")->Add(1);
  shard1.GetCounter("only1_total", "only shard 1")->Add(2);
  RegistrySnapshot merged = shard0.Snapshot();
  ASSERT_TRUE(merged.MergeFrom(shard1.Snapshot()).ok());
  EXPECT_DOUBLE_EQ(merged.Find("shared_total")->value, 12.0);
  EXPECT_DOUBLE_EQ(merged.Find("only0_total")->value, 1.0);
  EXPECT_DOUBLE_EQ(merged.Find("only1_total")->value, 2.0);
}

TEST(MetricsMergeTest, KShardMergeRendersIdenticallyInAnyOrder) {
  // Three shard registries with overlapping and disjoint series; merging
  // their snapshots in any order must render byte-identically — that is
  // what makes a K-shard scrape deterministic.
  auto build = [](int shard) {
    auto registry = std::make_unique<Registry>();
    registry->GetCounter("frames_total", "frames")->Add(10 + shard);
    registry
        ->GetCounter("per_shard_total", "per shard",
                     {{"shard", std::to_string(shard)}})
        ->Add(shard + 1);
    Histogram* h =
        registry->GetHistogram("lat_seconds", "latency", {0.1, 1.0});
    for (int i = 0; i <= shard; ++i) h->Observe(0.05 + 0.5 * i);
    return registry;
  };
  auto r0 = build(0);
  auto r1 = build(1);
  auto r2 = build(2);

  RegistrySnapshot forward = r0->Snapshot();
  ASSERT_TRUE(forward.MergeFrom(r1->Snapshot()).ok());
  ASSERT_TRUE(forward.MergeFrom(r2->Snapshot()).ok());

  RegistrySnapshot backward = r2->Snapshot();
  ASSERT_TRUE(backward.MergeFrom(r0->Snapshot()).ok());
  ASSERT_TRUE(backward.MergeFrom(r1->Snapshot()).ok());

  EXPECT_EQ(RenderPrometheus(forward), RenderPrometheus(backward));
  EXPECT_DOUBLE_EQ(forward.Find("frames_total")->value, 33.0);
  const MetricSnapshot* lat = forward.Find("lat_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 6u);  // 1 + 2 + 3 observations
}

TEST(MetricsMergeTest, MergeRejectsTypeConflicts) {
  Registry a;
  Registry b;
  a.GetCounter("x", "counter here")->Add(1);
  b.GetGauge("x", "gauge there")->Set(2.0);
  RegistrySnapshot merged = a.Snapshot();
  EXPECT_FALSE(merged.MergeFrom(b.Snapshot()).ok());
}

TEST(MetricsMergeTest, MergeRejectsHistogramBoundsConflicts) {
  Registry a;
  Registry b;
  a.GetHistogram("h", "help", {1.0})->Observe(0.5);
  b.GetHistogram("h", "help", {2.0})->Observe(0.5);
  RegistrySnapshot merged = a.Snapshot();
  EXPECT_FALSE(merged.MergeFrom(b.Snapshot()).ok());
}

// ---------------------------------------------------------- exposition

TEST(MetricsExpositionTest, EscapesLabelValues) {
  EXPECT_EQ(EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
}

TEST(MetricsExpositionTest, RendersByteExactPrometheusText) {
  Registry registry;
  registry
      .GetCounter("test_counter_total", "Counts things",
                  {{"path", "a\"b\\c\nd"}})
      ->Add(3);
  registry.GetGauge("test_gauge", "A gauge")->Set(2.5);
  Histogram* hist =
      registry.GetHistogram("test_hist_seconds", "A histogram", {0.001, 1.0});
  hist->Observe(0.0005);
  hist->Observe(0.5);
  hist->Observe(2.0);
  const std::string expected =
      "# HELP test_counter_total Counts things\n"
      "# TYPE test_counter_total counter\n"
      "test_counter_total{path=\"a\\\"b\\\\c\\nd\"} 3\n"
      "# HELP test_gauge A gauge\n"
      "# TYPE test_gauge gauge\n"
      "test_gauge 2.5\n"
      "# HELP test_hist_seconds A histogram\n"
      "# TYPE test_hist_seconds histogram\n"
      "test_hist_seconds_bucket{le=\"0.001\"} 1\n"
      "test_hist_seconds_bucket{le=\"1\"} 2\n"
      "test_hist_seconds_bucket{le=\"+Inf\"} 3\n"
      "test_hist_seconds_sum 2.5005\n"
      "test_hist_seconds_count 3\n";
  EXPECT_EQ(RenderPrometheus(registry.Snapshot()), expected);
}

TEST(MetricsExpositionTest, HelpAndTypeEmittedOncePerAdjacentName) {
  Registry registry;
  registry.GetCounter("multi_total", "help", {{"shard", "0"}})->Add(1);
  registry.GetCounter("multi_total", "help", {{"shard", "1"}})->Add(2);
  const std::string text = RenderPrometheus(registry.Snapshot());
  size_t first = text.find("# HELP multi_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# HELP multi_total", first + 1), std::string::npos);
  EXPECT_NE(text.find("multi_total{shard=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("multi_total{shard=\"1\"} 2\n"), std::string::npos);
}

// ---------------------------------------------------------------- hooks

TEST(MetricsHooksTest, HookRefreshesGaugesPerSnapshotUntilRemoved) {
  Registry registry;
  Gauge* depth = registry.GetGauge("depth", "queue depth");
  std::atomic<int> source{17};
  const std::size_t hook = registry.AddHook(
      [&] { depth->Set(static_cast<double>(source.load())); });
  EXPECT_DOUBLE_EQ(registry.Snapshot().Find("depth")->value, 17.0);
  source = 42;
  EXPECT_DOUBLE_EQ(registry.Snapshot().Find("depth")->value, 42.0);
  registry.RemoveHook(hook);
  source = 99;
  // Stale: nothing refreshes the gauge any more.
  EXPECT_DOUBLE_EQ(registry.Snapshot().Find("depth")->value, 42.0);
}

// --------------------------------------------------------- admin server

std::string HttpRequest(uint16_t port, const std::string& request) {
  auto socket = net::TcpConnect("127.0.0.1", port);
  if (!socket.ok()) return "";
  if (!net::SendAll(*socket, request).ok()) return "";
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(socket->fd(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

TEST(AdminServerTest, ServesMetricsAndStatusz) {
  Registry registry;
  registry.GetCounter("demo_total", "demo counter")->Add(4);
  auto server = AdminServer::Start(&registry);
  ASSERT_TRUE(server.ok()) << server.status().message();

  const std::string metrics = HttpRequest(
      (*server)->port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("demo_total 4\n"), std::string::npos);

  const std::string statusz = HttpRequest(
      (*server)->port(), "GET /statusz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(statusz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("application/json"), std::string::npos);
  EXPECT_NE(statusz.find("\"name\":\"demo_total\""), std::string::npos);

  EXPECT_NE(HttpRequest((*server)->port(),
                        "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
                .find("404"),
            std::string::npos);
  EXPECT_NE(HttpRequest((*server)->port(),
                        "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
                .find("405"),
            std::string::npos);
  (*server)->Shutdown();
}

TEST(AdminServerTest, ScrapeObservesConcurrentIncrements) {
  Registry registry;
  Counter* counter = registry.GetCounter("live_total", "live");
  auto server = AdminServer::Start(&registry);
  ASSERT_TRUE(server.ok()) << server.status().message();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) counter->Add(1);
  });
  ASSERT_TRUE(WaitFor([&] { return counter->Value() > 1000; }));
  const std::string response = HttpRequest(
      (*server)->port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  stop = true;
  writer.join();
  (*server)->Shutdown();
  // Anchor to the sample line — "live_total " also appears in # HELP.
  const size_t pos = response.find("\nlive_total ");
  ASSERT_NE(pos, std::string::npos);
  // The scraped value parses and is positive.
  const double scraped = std::stod(response.substr(pos + 12));
  EXPECT_GT(scraped, 0.0);
}

// ------------------------------------------------------ snapshot writer

TEST(SnapshotWriterTest, WritesPeriodicSnapshotsWithPreamble) {
  Registry registry;
  registry.GetCounter("written_total", "writes")->Add(9);
  const std::string path =
      ::testing::TempDir() + "obs_snapshot_writer_test.prom";
  std::ostringstream captured;
  PeriodicSnapshotWriter::Options options;
  options.interval = std::chrono::milliseconds(10);
  options.path = path;
  options.stream = &captured;
  options.preamble = [] { return std::string("# preamble line"); };
  {
    PeriodicSnapshotWriter writer(&registry, options);
    ASSERT_TRUE(WaitFor([&] { return writer.snapshots_written() >= 2; }));
    writer.Stop();
    EXPECT_GE(writer.snapshots_written(), 3u);  // >= 2 periodic + final
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  EXPECT_EQ(text.rfind("# preamble line\n", 0), 0u);
  EXPECT_NE(text.find("written_total 9\n"), std::string::npos);
  EXPECT_NE(captured.str().find("written_total 9\n"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace trajldp::obs
