#include <gtest/gtest.h>

#include "core/release_session.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

class ReleaseSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 4;
    options.cols = 4;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    NGramConfig config;
    config.epsilon = 2.0;
    config.decomposition.merge.kappa = 1;
    auto mech = NGramMechanism::Build(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok());
    mech_ = std::make_unique<NGramMechanism>(std::move(*mech));
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<NGramMechanism> mech_;
};

TEST_F(ReleaseSessionTest, CreateValidates) {
  EXPECT_FALSE(ReleaseSession::Create(nullptr, 5.0).ok());
  EXPECT_FALSE(ReleaseSession::Create(mech_.get(), 0.0).ok());
  EXPECT_FALSE(ReleaseSession::Create(mech_.get(), -1.0).ok());
  EXPECT_TRUE(ReleaseSession::Create(mech_.get(), 5.0).ok());
}

TEST_F(ReleaseSessionTest, ComposesKReleasesToLifetime) {
  // Lifetime 6, per-release 2 → exactly 3 releases fit (§5.7: kε-LDP).
  auto session = ReleaseSession::Create(mech_.get(), 6.0);
  ASSERT_TRUE(session.ok());
  const auto traj = MakeTrajectory({{0, 30}, {1, 40}});
  Rng rng(1);
  for (int day = 0; day < 3; ++day) {
    EXPECT_TRUE(session->CanShare());
    auto shared = session->Share(traj, rng);
    ASSERT_TRUE(shared.ok()) << "day " << day;
    EXPECT_TRUE(shared->Validate(time_).ok());
  }
  EXPECT_EQ(session->releases(), 3u);
  EXPECT_NEAR(session->spent_epsilon(), 6.0, 1e-9);
  EXPECT_FALSE(session->CanShare());
  auto fourth = session->Share(traj, rng);
  EXPECT_FALSE(fourth.ok());
  EXPECT_EQ(fourth.status().code(), StatusCode::kResourceExhausted);
  // A refused release spends nothing.
  EXPECT_NEAR(session->spent_epsilon(), 6.0, 1e-9);
}

TEST_F(ReleaseSessionTest, FailedPerturbationSpendsNothing) {
  auto session = ReleaseSession::Create(mech_.get(), 10.0);
  ASSERT_TRUE(session.ok());
  Rng rng(2);
  // Invalid input (decreasing times) → mechanism error → no spend.
  auto bad = session->Share(MakeTrajectory({{0, 40}, {1, 30}}), rng);
  EXPECT_FALSE(bad.ok());
  EXPECT_DOUBLE_EQ(session->spent_epsilon(), 0.0);
  EXPECT_EQ(session->releases(), 0u);
}

TEST_F(ReleaseSessionTest, NoBudgetDriftOverTenThousandReleases) {
  // ε = 0.1 is not representable in binary floating point, so a running
  // `spent += ε` accumulator drifts away from k·ε over many releases and
  // can mis-count the §5.7 composition by a release. Spent/remaining are
  // computed from releases × ε instead: exactly 10,000 releases fit a
  // lifetime of 10,000·ε, every intermediate spent value equals k·ε to
  // the last ulp, and the 10,001st release is refused.
  NGramConfig config;
  config.epsilon = 0.1;
  config.n = 1;
  config.decomposition.merge.kappa = 1;
  auto mech = NGramMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  constexpr size_t kReleases = 10000;
  const double lifetime = static_cast<double>(kReleases) * 0.1;
  auto session = ReleaseSession::Create(&*mech, lifetime);
  ASSERT_TRUE(session.ok());
  Rng rng(7);
  const auto traj = MakeTrajectory({{0, 30}});
  for (size_t k = 0; k < kReleases; ++k) {
    ASSERT_TRUE(session->CanShare()) << "release " << k;
    auto out = session->Share(traj, rng);
    ASSERT_TRUE(out.ok()) << "release " << k << ": " << out.status();
    ASSERT_DOUBLE_EQ(session->spent_epsilon(),
                     static_cast<double>(k + 1) * 0.1)
        << "release " << k;
  }
  EXPECT_EQ(session->releases(), kReleases);
  EXPECT_DOUBLE_EQ(session->spent_epsilon(), lifetime);
  EXPECT_DOUBLE_EQ(session->remaining_epsilon(), 0.0);
  EXPECT_FALSE(session->CanShare());
  auto refused = session->Share(traj, rng);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session->releases(), kReleases);
}

TEST_F(ReleaseSessionTest, ContinuousSinglePointSharing) {
  // §8's continuous setting: n = 1, one point per release.
  NGramConfig config;
  config.epsilon = 0.5;
  config.n = 1;
  config.decomposition.merge.kappa = 1;
  auto mech = NGramMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  auto session = ReleaseSession::Create(&*mech, 2.0);
  ASSERT_TRUE(session.ok());
  Rng rng(3);
  int shared = 0;
  for (model::Timestep t = 30; t < 60; t += 6) {
    auto out = session->Share(
        MakeTrajectory({{static_cast<model::PoiId>(t % 16), t}}), rng);
    if (!out.ok()) break;
    ++shared;
  }
  EXPECT_EQ(shared, 4);  // 4 × 0.5 = 2.0 lifetime
  EXPECT_FALSE(session->CanShare());
}

}  // namespace
}  // namespace trajldp::core
