#ifndef TRAJLDP_TESTS_TEST_WORLD_H_
#define TRAJLDP_TESTS_TEST_WORLD_H_

// Shared fixtures: small deterministic worlds used across test binaries.

#include <string>
#include <vector>

#include "geo/latlon.h"
#include "hierarchy/category_tree.h"
#include "model/opening_hours.h"
#include "model/poi_database.h"
#include "model/time_domain.h"
#include "model/trajectory.h"

namespace trajldp::testing {

// A 3-level tree with two unrelated domains:
//   Food -> {Restaurant -> {Pizza, Sushi}, Cafe -> {Espresso}}
//   Transit -> {Station -> {Subway}}
inline hierarchy::CategoryTree MakeSmallTree() {
  hierarchy::CategoryTree tree;
  const auto food = tree.AddRoot("Food");
  const auto transit = tree.AddRoot("Transit");
  const auto restaurant = tree.AddChild(food, "Restaurant");
  const auto cafe = tree.AddChild(food, "Cafe");
  const auto station = tree.AddChild(transit, "Station");
  tree.AddChild(restaurant, "Pizza Place");
  tree.AddChild(restaurant, "Sushi Bar");
  tree.AddChild(cafe, "Espresso Bar");
  tree.AddChild(station, "Subway Stop");
  return tree;
}

struct GridWorldOptions {
  // POIs are placed on a rows × cols lattice with this spacing.
  int rows = 4;
  int cols = 4;
  double spacing_km = 1.0;
  // All POIs open all day unless this is set; then POIs with odd ids are
  // open [open_begin, open_end) only.
  bool restrict_odd_hours = false;
  int open_begin_minute = 9 * 60;
  int open_end_minute = 17 * 60;
};

// Builds a deterministic lattice city over MakeSmallTree(): POI i sits at
// row i / cols, column i % cols, with leaf categories cycling through the
// tree's leaves and popularity = i + 1.
inline StatusOr<model::PoiDatabase> MakeGridWorld(
    const GridWorldOptions& options = GridWorldOptions()) {
  hierarchy::CategoryTree tree = MakeSmallTree();
  const std::vector<hierarchy::CategoryId> leaves = tree.Leaves();
  const geo::LatLon origin{40.7000, -74.0000};
  std::vector<model::Poi> pois;
  for (int r = 0; r < options.rows; ++r) {
    for (int c = 0; c < options.cols; ++c) {
      model::Poi poi;
      const size_t i = pois.size();
      poi.name = "poi_" + std::to_string(i);
      poi.location = geo::OffsetKm(origin, c * options.spacing_km,
                                   r * options.spacing_km);
      poi.category = leaves[i % leaves.size()];
      poi.popularity = static_cast<double>(i + 1);
      if (options.restrict_odd_hours && (i % 2 == 1)) {
        poi.hours = model::OpeningHours::Daily(options.open_begin_minute,
                                               options.open_end_minute);
      }
      pois.push_back(std::move(poi));
    }
  }
  return model::PoiDatabase::Create(std::move(pois), std::move(tree));
}

// Convenience: a trajectory from (poi, timestep) pairs.
inline model::Trajectory MakeTrajectory(
    std::vector<std::pair<model::PoiId, model::Timestep>> points) {
  model::Trajectory traj;
  for (const auto& [poi, t] : points) traj.Append(poi, t);
  return traj;
}

}  // namespace trajldp::testing

#endif  // TRAJLDP_TESTS_TEST_WORLD_H_
