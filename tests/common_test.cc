#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/aligned_arena.h"
#include "common/bounded_queue.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/status_or.h"
#include "common/table_printer.h"

namespace trajldp {
namespace {

// ---------- Status ----------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EachCodeHasDistinctName) {
  std::set<std::string_view> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("x");
  EXPECT_EQ(os.str(), "NotFound: x");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnNotOk(int x) {
  TRAJLDP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

// ---------- StatusOr ----------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> so(42);
  ASSERT_TRUE(so.ok());
  EXPECT_EQ(*so, 42);
  EXPECT_EQ(so.value_or(0), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> so(Status::NotFound("missing"));
  ASSERT_FALSE(so.ok());
  EXPECT_EQ(so.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(so.value_or(-7), -7);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> so(Status::Ok());
  EXPECT_FALSE(so.ok());
  EXPECT_EQ(so.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> so(std::make_unique<int>(5));
  ASSERT_TRUE(so.ok());
  std::unique_ptr<int> owned = std::move(so).value();
  EXPECT_EQ(*owned, 5);
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitDecorrelatesStreams) {
  Rng parent(7);
  Rng child = parent.Split();
  // The child stream should not replay the parent's stream.
  Rng parent_copy(7);
  parent_copy.Split();
  EXPECT_EQ(parent.NextUint64(), parent_copy.NextUint64());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextUint64() == parent.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformUint64Unbiased) {
  // Mean of U{0..9} should be near 4.5.
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.UniformUint64(10));
  EXPECT_NEAR(sum / n, 4.5, 0.05);
}

TEST(RngTest, GumbelMoments) {
  // Gumbel(0,1): mean = Euler–Mascheroni γ ≈ 0.5772, var = π²/6.
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gumbel();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5772, 0.02);
  EXPECT_NEAR(var, M_PI * M_PI / 6.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.1);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(12);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const size_t k = rng.Discrete(weights);
    ASSERT_LT(k, 3u);
    ++counts[k];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, DiscreteDegenerateInputs) {
  Rng rng(14);
  EXPECT_EQ(rng.Discrete({}), 0u);  // empty → size() == 0
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_EQ(rng.Discrete(zeros), zeros.size());
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(15);
  const auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

// ---------- math_util ----------

TEST(MathUtilTest, LogSumExpMatchesDirect) {
  const std::vector<double> xs = {0.1, -2.0, 3.5};
  double direct = 0.0;
  for (double x : xs) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(xs), std::log(direct), 1e-12);
}

TEST(MathUtilTest, LogSumExpStableForLargeInputs) {
  const std::vector<double> xs = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(xs), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_TRUE(std::isinf(LogSumExp({})));
}

TEST(MathUtilTest, SoftmaxSumsToOne) {
  const auto probs = Softmax({1.0, 2.0, 3.0});
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(probs[0], probs[1]);
  EXPECT_LT(probs[1], probs[2]);
}

TEST(MathUtilTest, MeanAndStdDev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(MathUtilTest, ZipfWeightsDecreasing) {
  const auto w = ZipfWeights(5, 1.0);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(MathUtilTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

// ---------- TablePrinter ----------

TEST(TablePrinterTest, AlignsAndPads) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1.00"});
  table.AddRow({"longer-name"});  // missing cell renders empty
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

// ---------- BoundedQueue ----------

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
}

TEST(BoundedQueueTest, ZeroCapacityPromotedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));  // full
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  (void)queue.Pop();
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(7));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.Push(8));        // rejected after close
  EXPECT_EQ(queue.Pop(), 7);          // still drains
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // idempotent
}

TEST(BoundedQueueTest, PushBlocksUntilConsumerMakesRoom) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the pop below
    second_pushed.store(true);
  });
  // The producer cannot finish while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(queue.Pop(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.Pop(), 2);
}

TEST(BoundedQueueTest, CloseUnblocksWaitingProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.Push(1));
  std::thread producer([&] { EXPECT_FALSE(full.Push(2)); });
  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_EQ(empty.Pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  full.Close();
  empty.Close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, TryPushForSucceedsWhenRoomExists) {
  BoundedQueue<int> queue(2);
  int item = 1;
  EXPECT_EQ(queue.TryPushFor(item, std::chrono::milliseconds(0)),
            QueuePushResult::kOk);
  EXPECT_EQ(queue.Pop(), 1);
}

TEST(BoundedQueueTest, TryPushForTimesOutOnFullQueueAndKeepsItem) {
  BoundedQueue<std::string> queue(1);
  ASSERT_TRUE(queue.Push("first"));
  std::string item = "second";
  EXPECT_EQ(queue.TryPushFor(item, std::chrono::milliseconds(5)),
            QueuePushResult::kTimeout);
  EXPECT_EQ(item, "second");  // the caller keeps the item to retry
  EXPECT_EQ(queue.size(), 1u);
  // After the consumer makes room, the very same item goes through.
  EXPECT_EQ(queue.Pop(), "first");
  EXPECT_EQ(queue.TryPushFor(item, std::chrono::milliseconds(5)),
            QueuePushResult::kOk);
  EXPECT_EQ(queue.Pop(), "second");
}

TEST(BoundedQueueTest, TryPushForReportsClosedNotTimeout) {
  BoundedQueue<int> queue(1);
  queue.Close();
  int item = 3;
  EXPECT_EQ(queue.TryPushFor(item, std::chrono::milliseconds(0)),
            QueuePushResult::kClosed);
}

TEST(BoundedQueueTest, CloseWhileTryPushForWaitsReturnsClosed) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    int item = 2;
    // Far longer than the test will run: only Close() can end the wait.
    EXPECT_EQ(queue.TryPushFor(item, std::chrono::seconds(60)),
              QueuePushResult::kClosed);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(returned.load());
  queue.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(queue.Pop(), 1);  // the waiting item was never enqueued
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, ManyProducersOneConsumerDeliverEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> queue(3);  // deliberately tiny: forces backpressure
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::thread closer([&] {
    for (auto& t : producers) t.join();
    queue.Close();
  });
  std::set<int> received;
  while (auto item = queue.Pop()) received.insert(*item);
  closer.join();
  EXPECT_EQ(received.size(),
            static_cast<size_t>(kProducers * kPerProducer));
}

// ---------- AlignedArena ----------

TEST(AlignedArenaTest, BytesForRoundsUpToWholeCacheLines) {
  EXPECT_EQ(AlignedArena::BytesFor<double>(0), 0u);
  EXPECT_EQ(AlignedArena::BytesFor<double>(1), AlignedArena::kAlign);
  EXPECT_EQ(AlignedArena::BytesFor<double>(8), AlignedArena::kAlign);
  EXPECT_EQ(AlignedArena::BytesFor<double>(9), 2 * AlignedArena::kAlign);
  EXPECT_EQ(AlignedArena::BytesFor<int32_t>(16), AlignedArena::kAlign);
  EXPECT_EQ(AlignedArena::BytesFor<int32_t>(17), 2 * AlignedArena::kAlign);
}

TEST(AlignedArenaTest, EveryCarveStartsOnItsOwnCacheLine) {
  AlignedArena arena;
  arena.Reset(AlignedArena::BytesFor<double>(3) +
              AlignedArena::BytesFor<int32_t>(5) +
              AlignedArena::BytesFor<double>(100));
  double* a = arena.Carve<double>(3);
  int32_t* b = arena.Carve<int32_t>(5);
  double* c = arena.Carve<double>(100);
  for (void* p : {static_cast<void*>(a), static_cast<void*>(b),
                  static_cast<void*>(c)}) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % AlignedArena::kAlign, 0u);
  }
  // Carves are laid out back to back in rounded units and are disjoint.
  EXPECT_EQ(reinterpret_cast<unsigned char*>(b),
            reinterpret_cast<unsigned char*>(a) +
                AlignedArena::BytesFor<double>(3));
  EXPECT_EQ(reinterpret_cast<unsigned char*>(c),
            reinterpret_cast<unsigned char*>(b) +
                AlignedArena::BytesFor<int32_t>(5));
  EXPECT_EQ(arena.used(), arena.capacity());
}

TEST(AlignedArenaTest, CarvedMemoryIsWritableAcrossTheWholeSpan) {
  AlignedArena arena;
  arena.Reset(AlignedArena::BytesFor<double>(1000));
  double* data = arena.Carve<double>(1000);
  for (size_t i = 0; i < 1000; ++i) data[i] = static_cast<double>(i);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(data[i], static_cast<double>(i));
  }
}

TEST(AlignedArenaTest, ResetReusesStorageGrowOnly) {
  AlignedArena arena;
  arena.Reset(AlignedArena::BytesFor<double>(64));
  (void)arena.Carve<double>(64);
  EXPECT_EQ(arena.used(), AlignedArena::BytesFor<double>(64));

  // A smaller Reset keeps the high-water buffer but re-arms the bump
  // pointer; the carve is aligned and usable again.
  arena.Reset(AlignedArena::BytesFor<double>(8));
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), AlignedArena::BytesFor<double>(8));
  double* again = arena.Carve<double>(8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(again) % AlignedArena::kAlign, 0u);
  again[7] = 1.5;
  EXPECT_EQ(again[7], 1.5);
}

}  // namespace
}  // namespace trajldp
