#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>

#include "common/rng.h"
#include "eval/dataset.h"
#include "eval/experiment.h"
#include "eval/hotspots.h"
#include "eval/normalized_error.h"
#include "eval/range_queries.h"
#include "test_world.h"

namespace trajldp::eval {
namespace {

using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

class EvalFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
};

// ---------- Normalized error ----------

TEST_F(EvalFixture, NeZeroOnIdenticalSets) {
  const model::TrajectorySet set = {MakeTrajectory({{0, 10}, {1, 20}}),
                                    MakeTrajectory({{2, 30}, {3, 40}})};
  auto ne = ComputeNormalizedError(*db_, time_, set, set);
  ASSERT_TRUE(ne.ok());
  EXPECT_DOUBLE_EQ(ne->time_hours, 0.0);
  EXPECT_DOUBLE_EQ(ne->category, 0.0);
  EXPECT_DOUBLE_EQ(ne->space_km, 0.0);
}

TEST_F(EvalFixture, NeMatchesHandComputation) {
  // One trajectory, two points. Perturbed shifts each point by one
  // timestep (10 min = 1/6 h) and moves point 0 to POI 1 (1 km away,
  // sibling-leaf category distance 2).
  const model::TrajectorySet real = {MakeTrajectory({{0, 10}, {4, 20}})};
  const model::TrajectorySet perturbed = {
      MakeTrajectory({{1, 11}, {4, 21}})};
  auto ne = ComputeNormalizedError(*db_, time_, real, perturbed);
  ASSERT_TRUE(ne.ok());
  EXPECT_NEAR(ne->time_hours, (1.0 / 6.0 + 1.0 / 6.0) / 2.0, 1e-9);
  EXPECT_NEAR(ne->category, (2.0 + 0.0) / 2.0, 1e-9);
  EXPECT_NEAR(ne->space_km, (db_->DistanceKm(0, 1) + 0.0) / 2.0, 1e-6);
}

TEST_F(EvalFixture, NeRejectsMismatchedSets) {
  const model::TrajectorySet a = {MakeTrajectory({{0, 10}})};
  const model::TrajectorySet b;
  EXPECT_FALSE(ComputeNormalizedError(*db_, time_, a, b).ok());
  const model::TrajectorySet c = {MakeTrajectory({{0, 10}, {1, 20}})};
  EXPECT_FALSE(ComputeNormalizedError(*db_, time_, a, c).ok());
}

// ---------- PRQ ----------

TEST_F(EvalFixture, PrqFullAtLargeDelta) {
  const model::TrajectorySet real = {MakeTrajectory({{0, 10}, {1, 20}})};
  const model::TrajectorySet perturbed = {
      MakeTrajectory({{15, 100}, {14, 120}})};
  for (auto dim : {PrqDimension::kSpace, PrqDimension::kTime,
                   PrqDimension::kCategory}) {
    auto pr = PreservationRangeQuery(*db_, time_, real, perturbed, dim,
                                     1e9);
    ASSERT_TRUE(pr.ok());
    EXPECT_DOUBLE_EQ(*pr, 100.0);
  }
}

TEST_F(EvalFixture, PrqCountsWithinDelta) {
  // Point 0 perturbed 1 km away, point 1 exact: at δ = 0.5 km → 50%.
  const model::TrajectorySet real = {MakeTrajectory({{0, 10}, {1, 20}})};
  const model::TrajectorySet perturbed = {
      MakeTrajectory({{1, 10}, {1, 20}})};
  auto pr = PreservationRangeQuery(*db_, time_, real, perturbed,
                                   PrqDimension::kSpace, 0.5);
  ASSERT_TRUE(pr.ok());
  EXPECT_DOUBLE_EQ(*pr, 50.0);
  // At δ = 1.5 km both qualify.
  pr = PreservationRangeQuery(*db_, time_, real, perturbed,
                              PrqDimension::kSpace, 1.5);
  ASSERT_TRUE(pr.ok());
  EXPECT_DOUBLE_EQ(*pr, 100.0);
}

TEST_F(EvalFixture, PrqTimeUsesMinutes) {
  const model::TrajectorySet real = {MakeTrajectory({{0, 10}})};
  const model::TrajectorySet perturbed = {MakeTrajectory({{0, 13}})};
  // 3 timesteps = 30 minutes.
  auto below = PreservationRangeQuery(*db_, time_, real, perturbed,
                                      PrqDimension::kTime, 29.0);
  auto above = PreservationRangeQuery(*db_, time_, real, perturbed,
                                      PrqDimension::kTime, 30.0);
  ASSERT_TRUE(below.ok());
  ASSERT_TRUE(above.ok());
  EXPECT_DOUBLE_EQ(*below, 0.0);
  EXPECT_DOUBLE_EQ(*above, 100.0);
}

TEST_F(EvalFixture, PrqRejectsEmptyPairInsteadOfNaN) {
  // Regression: a zero-length pair used to contribute 0/0 = NaN and
  // poison the whole percentage. It must be a clean error instead.
  const model::TrajectorySet real = {MakeTrajectory({{0, 10}}),
                                     MakeTrajectory({})};
  const model::TrajectorySet perturbed = {MakeTrajectory({{0, 10}}),
                                          MakeTrajectory({})};
  auto pr = PreservationRangeQuery(*db_, time_, real, perturbed,
                                   PrqDimension::kSpace, 1.0);
  ASSERT_FALSE(pr.ok());
  EXPECT_EQ(pr.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(pr.status().message().find("trajectory pair 1"),
            std::string::npos);
  EXPECT_NE(pr.status().message().find("empty"), std::string::npos);
  // The curve wrapper surfaces the same guard.
  EXPECT_FALSE(PrqCurve(*db_, time_, real, perturbed, PrqDimension::kSpace,
                        {0.5, 1.0})
                   .ok());
}

TEST_F(EvalFixture, PrqCurveIsMonotone) {
  Rng rng(3);
  model::TrajectorySet real, perturbed;
  for (int k = 0; k < 20; ++k) {
    const auto p1 = static_cast<model::PoiId>(rng.UniformUint64(16));
    const auto p2 = static_cast<model::PoiId>(rng.UniformUint64(16));
    real.push_back(MakeTrajectory({{p1, 10}, {p1, 30}}));
    perturbed.push_back(MakeTrajectory({{p2, 15}, {p2, 40}}));
  }
  auto curve = PrqCurve(*db_, time_, real, perturbed, PrqDimension::kSpace,
                        {0.0, 0.5, 1.0, 2.0, 4.0, 8.0});
  ASSERT_TRUE(curve.ok());
  for (size_t i = 1; i < curve->size(); ++i) {
    EXPECT_GE((*curve)[i], (*curve)[i - 1]);
  }
  EXPECT_DOUBLE_EQ(curve->back(), 100.0);
}

// ---------- Hotspots ----------

TEST_F(EvalFixture, DetectsCraftedHotspot) {
  // 25 users visit POI 0 between 10:00 and 11:00 → one POI-level hotspot
  // with η = 20. Second visits scatter over distinct POIs so only POI 0
  // crosses the threshold.
  model::TrajectorySet set;
  for (int u = 0; u < 25; ++u) {
    set.push_back(MakeTrajectory(
        {{0, 61}, {static_cast<model::PoiId>(1 + u % 15), 100}}));
  }
  HotspotSpec spec;
  spec.entity = HotspotSpec::Entity::kPoi;
  spec.eta = 20;
  auto hotspots = FindHotspots(*db_, time_, set, spec);
  ASSERT_TRUE(hotspots.ok());
  ASSERT_EQ(hotspots->size(), 1u);
  EXPECT_EQ((*hotspots)[0].entity, 0u);
  EXPECT_EQ((*hotspots)[0].start_minute, 600);
  EXPECT_EQ((*hotspots)[0].end_minute, 660);
  EXPECT_EQ((*hotspots)[0].peak_count, 25);
}

TEST_F(EvalFixture, UniqueVisitorsCountOncePerBin) {
  // One user visiting the same POI twice in a bin counts once: 19 users
  // with double visits stay below η = 20.
  model::TrajectorySet set;
  for (int u = 0; u < 19; ++u) {
    set.push_back(MakeTrajectory({{0, 60}, {0, 62}}));
  }
  HotspotSpec spec;
  spec.eta = 19;
  auto hotspots = FindHotspots(*db_, time_, set, spec);
  ASSERT_TRUE(hotspots.ok());
  ASSERT_EQ(hotspots->size(), 1u);
  EXPECT_EQ((*hotspots)[0].peak_count, 19);
}

TEST_F(EvalFixture, AdjacentHotBinsMergeIntoOneHotspot) {
  model::TrajectorySet set;
  for (int u = 0; u < 30; ++u) {
    // Visits in two consecutive hours.
    set.push_back(MakeTrajectory({{0, 61}, {0, 67}}));
  }
  HotspotSpec spec;
  spec.eta = 20;
  auto hotspots = FindHotspots(*db_, time_, set, spec);
  ASSERT_TRUE(hotspots.ok());
  ASSERT_EQ(hotspots->size(), 1u);
  EXPECT_EQ((*hotspots)[0].start_minute, 600);
  EXPECT_EQ((*hotspots)[0].end_minute, 720);
}

TEST_F(EvalFixture, SpatialAndCategoryEntities) {
  // All 4 distinct POIs lie in the same 2×2 grid quadrant? POIs 0,1,4,5
  // share the bottom-left quadrant of the lattice. Give each user one
  // visit to a different POI: POI-level counts stay below η, but the
  // grid-cell count crosses it.
  model::TrajectorySet set;
  const model::PoiId corner[] = {0, 1, 4, 5};
  for (int u = 0; u < 24; ++u) {
    set.push_back(MakeTrajectory({{corner[u % 4], 61}}));
  }
  HotspotSpec poi_spec;
  poi_spec.eta = 20;
  auto poi_hotspots = FindHotspots(*db_, time_, set, poi_spec);
  ASSERT_TRUE(poi_hotspots.ok());
  EXPECT_TRUE(poi_hotspots->empty());

  HotspotSpec grid_spec;
  grid_spec.entity = HotspotSpec::Entity::kSpatialGrid;
  grid_spec.grid_size = 2;
  grid_spec.eta = 20;
  auto grid_hotspots = FindHotspots(*db_, time_, set, grid_spec);
  ASSERT_TRUE(grid_hotspots.ok());
  EXPECT_EQ(grid_hotspots->size(), 1u);

  // Category level 1: POIs 0,4 are Pizza/Sushi? (leaves cycle by id).
  // All 24 visits share... count hotspots at level 1 with η = 10: the
  // 'Food' domain collects POIs 0 (pizza), 1 (sushi), 5 (sushi)... at
  // least one hotspot must appear.
  HotspotSpec cat_spec;
  cat_spec.entity = HotspotSpec::Entity::kCategoryLevel;
  cat_spec.category_level = 1;
  cat_spec.eta = 10;
  auto cat_hotspots = FindHotspots(*db_, time_, set, cat_spec);
  ASSERT_TRUE(cat_hotspots.ok());
  EXPECT_GE(cat_hotspots->size(), 1u);
}

TEST_F(EvalFixture, HotspotSpecValidation) {
  HotspotSpec spec;
  spec.bin_minutes = 7;
  EXPECT_FALSE(FindHotspots(*db_, time_, {}, spec).ok());
  spec = HotspotSpec();
  spec.eta = 0;
  EXPECT_FALSE(FindHotspots(*db_, time_, {}, spec).ok());
}

TEST_F(EvalFixture, CompareHotspotsAhdAndAcd) {
  // Real hotspot 10:00–11:00 count 30; perturbed shifted one hour later
  // with count 25 → AHD = |1| + |1| = 2 h, ACD = 5.
  const std::vector<Hotspot> real = {{0, 600, 660, 30}};
  const std::vector<Hotspot> perturbed = {{0, 660, 720, 25}};
  const auto cmp = CompareHotspots(real, perturbed);
  EXPECT_EQ(cmp.matched, 1u);
  EXPECT_EQ(cmp.excluded, 0u);
  EXPECT_NEAR(cmp.ahd_hours, 2.0, 1e-9);
  EXPECT_NEAR(cmp.acd, 5.0, 1e-9);
}

TEST_F(EvalFixture, CompareHotspotsPicksNearestAndExcludesOrphans) {
  const std::vector<Hotspot> real = {{0, 600, 660, 30}, {0, 1200, 1260, 40}};
  const std::vector<Hotspot> perturbed = {{0, 1140, 1260, 35},
                                          {7, 600, 660, 10}};
  const auto cmp = CompareHotspots(real, perturbed);
  // The first perturbed hotspot matches the 20:00 real hotspot
  // (|1200−1140|/60 + |1260−1260|/60 = 1 h), not the 10:00 one (10 h).
  EXPECT_EQ(cmp.matched, 1u);
  EXPECT_EQ(cmp.excluded, 1u);  // entity 7 has no real hotspot
  EXPECT_NEAR(cmp.ahd_hours, 1.0, 1e-9);
  EXPECT_NEAR(cmp.acd, 5.0, 1e-9);
}

TEST_F(EvalFixture, CompareHotspotsBreaksAhdTiesDeterministically) {
  // Two real hotspots both 2 h from the perturbed one. The match must
  // pick the smaller count error (|22−25| = 3 beats |30−25| = 5)
  // regardless of the order the real list happens to be in.
  const Hotspot far_count{0, 540, 600, 30};
  const Hotspot near_count{0, 660, 720, 22};
  const std::vector<Hotspot> perturbed = {{0, 600, 660, 25}};
  for (const auto& real : std::vector<std::vector<Hotspot>>{
           {far_count, near_count}, {near_count, far_count}}) {
    const auto cmp = CompareHotspots(real, perturbed);
    EXPECT_EQ(cmp.matched, 1u);
    EXPECT_NEAR(cmp.ahd_hours, 2.0, 1e-9);
    EXPECT_NEAR(cmp.acd, 3.0, 1e-9);
  }
  // Full tie (same distance AND count error): the earlier interval wins,
  // again order-independently.
  const Hotspot early{0, 540, 600, 25};
  const Hotspot late{0, 660, 720, 25};
  for (const auto& real : std::vector<std::vector<Hotspot>>{
           {early, late}, {late, early}}) {
    const auto cmp = CompareHotspots(real, perturbed);
    EXPECT_EQ(cmp.matched, 1u);
    EXPECT_NEAR(cmp.acd, 0.0, 1e-9);
  }
}

// ---------- Experiment driver ----------

TEST(ExperimentTest, MethodNamesMatchPaper) {
  EXPECT_EQ(MethodName(Method::kIndNoReach), "IndNoReach");
  EXPECT_EQ(MethodName(Method::kIndReach), "IndReach");
  EXPECT_EQ(MethodName(Method::kPhysDist), "PhysDist");
  EXPECT_EQ(MethodName(Method::kNGramNoH), "NGramNoH");
  EXPECT_EQ(MethodName(Method::kNGram), "NGram");
  EXPECT_EQ(AllMethods().size(), 5u);
}

TEST(ExperimentTest, RunMethodProducesPairedSets) {
  DatasetOptions options;
  options.num_pois = 200;
  options.num_trajectories = 25;
  options.seed = 3;
  auto dataset = MakeCampusDataset(options);
  ASSERT_TRUE(dataset.ok()) << dataset.status();

  ExperimentConfig config;
  config.epsilon = 5.0;
  config.max_trajectories = 10;
  for (Method method : AllMethods()) {
    auto result = RunMethod(*dataset, method, config);
    ASSERT_TRUE(result.ok()) << MethodName(method) << ": "
                             << result.status();
    EXPECT_EQ(result->real.size(), result->perturbed.size());
    EXPECT_LE(result->real.size(), 10u);
    for (size_t i = 0; i < result->real.size(); ++i) {
      EXPECT_EQ(result->real[i].size(), result->perturbed[i].size());
    }
    // NE must be computable on the pairing.
    EXPECT_TRUE(ComputeNormalizedError(dataset->db, dataset->time,
                                       result->real, result->perturbed)
                    .ok());
  }
}

TEST(ExperimentTest, ScaledCountHonoursMinimum) {
  unsetenv("TRAJLDP_BENCH_SCALE");
  EXPECT_EQ(ScaledCount(100, 20), 100u);
  EXPECT_EQ(ScaledCount(5, 20), 20u);
  setenv("TRAJLDP_BENCH_SCALE", "0.5", 1);
  EXPECT_EQ(ScaledCount(100, 20), 50u);
  unsetenv("TRAJLDP_BENCH_SCALE");
}

}  // namespace
}  // namespace trajldp::eval
