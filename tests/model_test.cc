#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "model/opening_hours.h"
#include "model/poi_database.h"
#include "model/reachability.h"
#include "model/semantic_distance.h"
#include "model/time_domain.h"
#include "model/trajectory.h"
#include "test_world.h"

namespace trajldp::model {
namespace {

using trajldp::testing::GridWorldOptions;
using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

// ---------- TimeDomain ----------

TEST(TimeDomainTest, CreateValidatesGranularity) {
  EXPECT_TRUE(TimeDomain::Create(10).ok());
  EXPECT_TRUE(TimeDomain::Create(60).ok());
  EXPECT_FALSE(TimeDomain::Create(0).ok());
  EXPECT_FALSE(TimeDomain::Create(-5).ok());
  EXPECT_FALSE(TimeDomain::Create(7).ok());  // does not divide 1440
}

TEST(TimeDomainTest, TimestepArithmetic) {
  auto time = TimeDomain::Create(10);
  ASSERT_TRUE(time.ok());
  EXPECT_EQ(time->num_timesteps(), 144);
  EXPECT_EQ(time->TimestepToMinute(6), 60);
  EXPECT_EQ(time->MinuteToTimestep(65), 6);
  EXPECT_EQ(time->MinuteToTimestep(0), 0);
  EXPECT_EQ(time->MinuteToTimestep(1439), 143);
  EXPECT_EQ(time->GapMinutes(3, 9), 60);
}

TEST(TimeDomainTest, TimeDistanceCappedAtTwelveHours) {
  TimeDomain time;
  EXPECT_DOUBLE_EQ(time.TimeDistanceHours(0, 60), 1.0);
  EXPECT_DOUBLE_EQ(time.TimeDistanceHours(0, 13 * 60), 12.0);
  EXPECT_DOUBLE_EQ(time.TimeDistanceHours(10, 10), 0.0);
}

TEST(TimeDomainTest, FormatTimestep) {
  auto time = TimeDomain::Create(10);
  ASSERT_TRUE(time.ok());
  EXPECT_EQ(time->FormatTimestep(0), "00:00");
  EXPECT_EQ(time->FormatTimestep(65), "10:50");
}

// ---------- OpeningHours ----------

TEST(OpeningHoursTest, AlwaysOpen) {
  const auto hours = OpeningHours::AlwaysOpen();
  EXPECT_TRUE(hours.IsOpenAtMinute(0));
  EXPECT_TRUE(hours.IsOpenAtMinute(1439));
  EXPECT_EQ(hours.OpenMinutesPerDay(), kMinutesPerDay);
}

TEST(OpeningHoursTest, DailyWindow) {
  const auto hours = OpeningHours::Daily(9 * 60, 17 * 60);
  EXPECT_FALSE(hours.IsOpenAtMinute(8 * 60));
  EXPECT_TRUE(hours.IsOpenAtMinute(9 * 60));
  EXPECT_TRUE(hours.IsOpenAtMinute(16 * 60 + 59));
  EXPECT_FALSE(hours.IsOpenAtMinute(17 * 60));
  EXPECT_EQ(hours.OpenMinutesPerDay(), 8 * 60);
}

TEST(OpeningHoursTest, WrapAroundSplitsAtMidnight) {
  // A bar open 18:00–02:00.
  const auto hours = OpeningHours::Daily(18 * 60, 2 * 60);
  EXPECT_TRUE(hours.IsOpenAtMinute(23 * 60));
  EXPECT_TRUE(hours.IsOpenAtMinute(60));
  EXPECT_FALSE(hours.IsOpenAtMinute(12 * 60));
  EXPECT_EQ(hours.intervals().size(), 2u);
  EXPECT_EQ(hours.OpenMinutesPerDay(), 8 * 60);
}

TEST(OpeningHoursTest, FromIntervalsMergesOverlaps) {
  const auto hours = OpeningHours::FromIntervals(
      {{600, 700}, {650, 800}, {900, 1000}});
  EXPECT_EQ(hours.intervals().size(), 2u);
  EXPECT_TRUE(hours.IsOpenAtMinute(750));
  EXPECT_FALSE(hours.IsOpenAtMinute(850));
}

TEST(OpeningHoursTest, OverlapQueries) {
  const auto hours = OpeningHours::Daily(9 * 60, 17 * 60);
  EXPECT_TRUE(hours.IsOpenDuring({8 * 60, 10 * 60}));
  EXPECT_FALSE(hours.IsOpenDuring({6 * 60, 8 * 60}));
  EXPECT_TRUE(hours.IsOpenThroughout({10 * 60, 12 * 60}));
  EXPECT_FALSE(hours.IsOpenThroughout({8 * 60, 12 * 60}));
}

// ---------- Trajectory ----------

TEST(TrajectoryTest, ValidateAcceptsIncreasingTimes) {
  TimeDomain time;
  const auto traj = MakeTrajectory({{0, 10}, {1, 20}, {2, 30}});
  EXPECT_TRUE(traj.Validate(time).ok());
}

TEST(TrajectoryTest, ValidateRejectsBadInputs) {
  TimeDomain time;
  EXPECT_FALSE(Trajectory().Validate(time).ok());
  EXPECT_FALSE(
      MakeTrajectory({{0, 10}, {1, 10}}).Validate(time).ok());  // equal t
  EXPECT_FALSE(
      MakeTrajectory({{0, 20}, {1, 10}}).Validate(time).ok());  // decreasing
  EXPECT_FALSE(
      MakeTrajectory({{0, 10}, {1, 999}}).Validate(time).ok());  // range
  EXPECT_FALSE(MakeTrajectory({{kInvalidPoi, 10}}).Validate(time).ok());
}

TEST(TrajectoryTest, FragmentUsesOneBasedInclusiveIndices) {
  const auto traj = MakeTrajectory({{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto frag = traj.Fragment(2, 3);
  ASSERT_EQ(frag.size(), 2u);
  EXPECT_EQ(frag.point(0).poi, 1u);
  EXPECT_EQ(frag.point(1).poi, 2u);
}

// ---------- PoiDatabase ----------

TEST(PoiDatabaseTest, CreateAssignsDenseIds) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 16u);
  for (PoiId i = 0; i < db->size(); ++i) {
    EXPECT_EQ(db->poi(i).id, i);
  }
}

TEST(PoiDatabaseTest, CreateRejectsInvalidInputs) {
  hierarchy::CategoryTree tree = trajldp::testing::MakeSmallTree();
  EXPECT_FALSE(model::PoiDatabase::Create({}, std::move(tree)).ok());

  hierarchy::CategoryTree tree2 = trajldp::testing::MakeSmallTree();
  Poi bad;
  bad.category = 9999;  // not in tree
  EXPECT_FALSE(model::PoiDatabase::Create({bad}, std::move(tree2)).ok());

  hierarchy::CategoryTree tree3 = trajldp::testing::MakeSmallTree();
  Poi neg;
  neg.category = 0;
  neg.popularity = -1.0;
  EXPECT_FALSE(model::PoiDatabase::Create({neg}, std::move(tree3)).ok());
}

TEST(PoiDatabaseTest, DistanceMatchesLattice) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  // POIs 0 and 1 are adjacent columns: 1 km apart.
  EXPECT_NEAR(db->DistanceKm(0, 1), 1.0, 0.01);
  // POIs 0 and 5 are one row and one column apart: sqrt(2) km.
  EXPECT_NEAR(db->DistanceKm(0, 5), std::sqrt(2.0), 0.02);
}

TEST(PoiDatabaseTest, NearestSnapsWithin100m) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const geo::LatLon near0 =
      geo::OffsetKm(db->poi(0).location, 0.05, 0.0);
  auto snapped = db->Nearest(near0, 0.1);
  ASSERT_TRUE(snapped.has_value());
  EXPECT_EQ(*snapped, 0u);
  // A point 500 m from everything does not snap at the 100 m cut-off.
  const geo::LatLon far = geo::OffsetKm(db->poi(0).location, -0.5, -0.5);
  EXPECT_FALSE(db->Nearest(far, 0.1).has_value());
}

TEST(PoiDatabaseTest, WithinRadiusOfIncludesSelf) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto hits = db->WithinRadiusOf(0, 1.1);
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 0u) != hits.end());
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 1u) != hits.end());
  // Diagonal neighbour at sqrt(2) km is outside 1.1 km.
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 5u) == hits.end());
}

// ---------- Reachability ----------

TEST(ReachabilityTest, ThetaScalesWithGap) {
  ReachabilityConfig config;
  config.speed_kmh = 6.0;
  EXPECT_DOUBLE_EQ(config.ThetaKm(10), 1.0);
  EXPECT_DOUBLE_EQ(config.ThetaKm(60), 6.0);
}

TEST(ReachabilityTest, IsReachableRespectsSpeedAndGap) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  TimeDomain time;
  ReachabilityConfig config;
  config.speed_kmh = 6.0;  // 1 km per 10-minute timestep
  Reachability reach(&*db, time, config);
  // POI 0 → 1 is 1 km: reachable in one timestep, not in zero.
  EXPECT_TRUE(reach.IsReachable(0, 1, 10));
  EXPECT_FALSE(reach.IsReachable(0, 1, 0));
  // POI 0 → 3 is 3 km: needs 30 minutes.
  EXPECT_FALSE(reach.IsReachable(0, 3, 20));
  EXPECT_TRUE(reach.IsReachable(0, 3, 30));
}

TEST(ReachabilityTest, UnconstrainedAlwaysReachable) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  TimeDomain time;
  Reachability reach(&*db, time, ReachabilityConfig::Unconstrained());
  EXPECT_TRUE(reach.IsReachable(0, 15, 10));
  EXPECT_EQ(reach.ReachableSet(0, 10).size(), db->size());
}

TEST(ReachabilityTest, CheckFeasibleCatchesViolations) {
  GridWorldOptions options;
  options.restrict_odd_hours = true;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  TimeDomain time;
  ReachabilityConfig config;
  config.speed_kmh = 6.0;
  Reachability reach(&*db, time, config);

  // Feasible: adjacent POIs, one timestep apart, during open hours.
  EXPECT_TRUE(
      reach.CheckFeasible(MakeTrajectory({{0, 60}, {1, 66}})).ok());
  // Too far for the gap: POI 0 → 15 is ~4.2 km but only 10 minutes.
  EXPECT_EQ(
      reach.CheckFeasible(MakeTrajectory({{0, 60}, {15, 61}})).code(),
      StatusCode::kFailedPrecondition);
  // Odd POI (id 1) visited at 03:00 while closed.
  EXPECT_EQ(reach.CheckFeasible(MakeTrajectory({{1, 18}})).code(),
            StatusCode::kFailedPrecondition);
}

// ---------- SemanticDistance ----------

TEST(SemanticDistanceTest, CombinesDimensions) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  TimeDomain time;
  SemanticDistance dist(&*db, time);

  // Same POI, same time: zero.
  EXPECT_DOUBLE_EQ(dist.Between({0, 10}, {0, 10}), 0.0);

  // POI 0 vs POI 4: one row apart (1 km), categories cycle with period 4
  // so they share the same leaf → d_c = 0. One hour apart → d_t = 1.
  const double expected = std::sqrt(
      db->DistanceKm(0, 4) * db->DistanceKm(0, 4) + 1.0 * 1.0);
  EXPECT_NEAR(dist.Between({0, 0}, {4, 6}), expected, 1e-9);
}

TEST(SemanticDistanceTest, WeightsZeroOutDimensions) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  TimeDomain time;
  SemanticDistance phys(&*db, time, {1.0, 0.0, 0.0});
  // Pure physical distance regardless of time and category.
  EXPECT_NEAR(phys.Between({0, 0}, {1, 100}), db->DistanceKm(0, 1), 1e-9);
}

TEST(SemanticDistanceTest, TrajectoriesSumElementWise) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  TimeDomain time;
  SemanticDistance dist(&*db, time);
  const auto a = MakeTrajectory({{0, 10}, {1, 20}});
  const auto b = MakeTrajectory({{2, 12}, {3, 25}});
  const double expected =
      dist.Between(a.point(0), b.point(0)) + dist.Between(a.point(1), b.point(1));
  EXPECT_NEAR(dist.BetweenTrajectories(a, b), expected, 1e-12);
}

TEST(SemanticDistanceTest, MaxDistanceBounds) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  TimeDomain time;
  SemanticDistance dist(&*db, time);
  for (PoiId a = 0; a < db->size(); ++a) {
    for (PoiId b = 0; b < db->size(); ++b) {
      EXPECT_LE(dist.Between({a, 0}, {b, 143}), dist.MaxDistance() + 1e-9);
    }
  }
}

}  // namespace
}  // namespace trajldp::model
