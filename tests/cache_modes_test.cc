// Cache-mode coverage for NgramDomain (ISSUE 8): the sharded and
// per-thread-replica cache layouts must change contention and memory
// only — every mode draws bit-identically to an uncached domain — and
// capacity shrinks / ClearCache() must stay safe while worker threads
// are mid-draw (rows are shared_ptr-pinned for the duration of a draw).
//
// CacheModesTest.* and CacheStressTest.* run in the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/batch_release_engine.h"
#include "core/ngram_domain.h"
#include "core/ngram_perturber.h"
#include "region/region_distance.h"
#include "region/region_graph.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;

class CacheModesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    region::DecompositionConfig config;
    config.grid_size = 2;
    config.coarse_grids = {1};
    config.base_interval_minutes = 360;
    config.merge.kappa = 1;
    auto decomp = region::StcDecomposition::Build(db_.get(), time_, config);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<region::StcDecomposition>(std::move(*decomp));

    distance_ = std::make_unique<region::RegionDistance>(decomp_.get());
    model::ReachabilityConfig reach;
    reach.speed_kmh = 8.0;
    reach.reference_gap_minutes = 60;
    graph_ = std::make_unique<region::RegionGraph>(
        region::RegionGraph::Build(*decomp_, reach));
  }

  // A mixed workload: several n-gram lengths over distinct regions, each
  // drawn at several ε′ so both row caches see hits, misses, and (when
  // capped) evictions.
  std::vector<std::vector<region::RegionId>> MakeInputs() const {
    const region::RegionId r0 = *decomp_->Lookup(0, 54);
    const region::RegionId r1 = *decomp_->Lookup(1, 60);
    const region::RegionId r2 = *decomp_->Lookup(2, 66);
    return {{r0}, {r0, r1}, {r1, r0}, {r0, r1, r2}, {r2, r1}};
  }

  // The draw sequence of `domain` over the fixed workload with a fresh
  // Rng(seed) and a persistent workspace — the unit being compared
  // across cache modes.
  std::vector<std::vector<region::RegionId>> DrawSequence(
      const NgramDomain& domain, uint64_t seed, int rounds,
      SamplerWorkspace& ws) const {
    const auto inputs = MakeInputs();
    Rng rng(seed);
    std::vector<std::vector<region::RegionId>> draws;
    std::vector<region::RegionId> out;
    for (int round = 0; round < rounds; ++round) {
      for (const double epsilon : {0.3, 1.0, 4.0}) {
        for (const auto& input : inputs) {
          const Status status = domain.SampleInto(
              std::span<const region::RegionId>(input), epsilon, rng, ws,
              out);
          EXPECT_TRUE(status.ok()) << status;
          draws.push_back(out);
        }
      }
    }
    return draws;
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<region::StcDecomposition> decomp_;
  std::unique_ptr<region::RegionDistance> distance_;
  std::unique_ptr<region::RegionGraph> graph_;
};

constexpr NgramDomain::CacheMode kAllModes[] = {
    NgramDomain::CacheMode::kShared,
    NgramDomain::CacheMode::kSharded,
    NgramDomain::CacheMode::kPerThread,
};

const char* ModeName(NgramDomain::CacheMode mode) {
  switch (mode) {
    case NgramDomain::CacheMode::kShared:
      return "kShared";
    case NgramDomain::CacheMode::kSharded:
      return "kSharded";
    case NgramDomain::CacheMode::kPerThread:
      return "kPerThread";
  }
  return "?";
}

// The tentpole contract: every cache arrangement performs the exact
// same arithmetic, so each mode's draw sequence equals the uncached
// domain's — including with a capacity cap forcing evictions mid-run.
TEST_F(CacheModesTest, EveryModeDrawsIdenticalToUncached) {
  NgramDomain uncached(graph_.get(), distance_.get());
  uncached.set_cache_enabled(false);
  SamplerWorkspace uncached_ws;
  const auto expected = DrawSequence(uncached, 1234, /*rounds=*/3,
                                     uncached_ws);

  for (const NgramDomain::CacheMode mode : kAllModes) {
    for (const size_t capacity : {size_t{0}, size_t{4}}) {
      NgramDomain domain(graph_.get(), distance_.get());
      domain.set_cache_mode(mode);
      domain.set_cache_capacity(capacity);
      SamplerWorkspace ws;
      const auto draws = DrawSequence(domain, 1234, /*rounds=*/3, ws);
      EXPECT_EQ(draws, expected)
          << ModeName(mode) << " capacity " << capacity;
    }
  }
}

// kSharded splits the LRU budget across stripes, so the documented
// occupancy bound is max(capacity, kCacheStripes) — looser than
// kShared's exact cap but still a bound, and evictions must fire.
TEST_F(CacheModesTest, ShardedCapacityBoundsOccupancy) {
  NgramDomain domain(graph_.get(), distance_.get());
  domain.set_cache_mode(NgramDomain::CacheMode::kSharded);
  constexpr size_t kCapacity = 6;
  domain.set_cache_capacity(kCapacity);
  const size_t bound = std::max(kCapacity, NgramDomain::kCacheStripes);

  const region::RegionId r0 = *decomp_->Lookup(0, 54);
  const region::RegionId r1 = *decomp_->Lookup(1, 60);
  Rng rng(2026);
  for (int user = 0; user < 60; ++user) {
    const double epsilon = 0.2 + 0.1 * user;  // a new key pair per user
    ASSERT_TRUE(domain.Sample({r0, r1}, epsilon, rng).ok()) << user;
    const auto stats = domain.cache_stats();
    EXPECT_LE(stats.weight_rows, bound) << "user " << user;
    EXPECT_LE(stats.suffix_rows, bound) << "user " << user;
  }
  EXPECT_GT(domain.cache_stats().weight_evictions, 0u);
}

// Under kPerThread the domain's stripes stay empty — all rows and
// counters live in the workspace's replica, whose stats() reports them.
TEST_F(CacheModesTest, ReplicaHoldsTheRowsAndTheStats) {
  NgramDomain domain(graph_.get(), distance_.get());
  domain.set_cache_mode(NgramDomain::CacheMode::kPerThread);
  SamplerWorkspace ws;
  (void)DrawSequence(domain, 7, /*rounds=*/2, ws);

  const auto stripe_stats = domain.cache_stats();
  EXPECT_EQ(stripe_stats.weight_rows, 0u);
  EXPECT_EQ(stripe_stats.weight_hits, 0u);
  EXPECT_EQ(stripe_stats.weight_misses, 0u);

  ASSERT_NE(ws.replica, nullptr);
  const auto replica_stats = ws.replica->stats();
  EXPECT_GT(replica_stats.weight_rows, 0u);
  EXPECT_GT(replica_stats.weight_hits, 0u);
  EXPECT_GT(replica_stats.weight_misses, 0u);
  EXPECT_GT(replica_stats.suffix_rows, 0u);
}

// Each replica honours the domain capacity independently: rows stay
// bounded and evictions are counted per replica.
TEST_F(CacheModesTest, ReplicaHonoursCapacity) {
  NgramDomain domain(graph_.get(), distance_.get());
  domain.set_cache_mode(NgramDomain::CacheMode::kPerThread);
  constexpr size_t kCapacity = 3;
  domain.set_cache_capacity(kCapacity);

  const region::RegionId r0 = *decomp_->Lookup(0, 54);
  SamplerWorkspace ws;
  Rng rng(5);
  std::vector<region::RegionId> out;
  const std::vector<region::RegionId> input = {r0};
  for (int user = 0; user < 20; ++user) {
    const double epsilon = 0.5 + 0.25 * user;
    ASSERT_TRUE(domain
                    .SampleInto(std::span<const region::RegionId>(input),
                                epsilon, rng, ws, out)
                    .ok());
    ASSERT_NE(ws.replica, nullptr);
    EXPECT_LE(ws.replica->stats().weight_rows, kCapacity) << user;
  }
  EXPECT_GT(ws.replica->stats().weight_evictions, 0u);
}

// Switching modes drops every cached row (stale stripes must not pin
// memory) and keeps drawing correctly afterwards.
TEST_F(CacheModesTest, SwitchingModesDropsCachedRows) {
  NgramDomain domain(graph_.get(), distance_.get());
  domain.set_cache_mode(NgramDomain::CacheMode::kSharded);
  const region::RegionId r0 = *decomp_->Lookup(0, 54);
  Rng rng(9);
  ASSERT_TRUE(domain.Sample({r0}, 1.0, rng).ok());
  ASSERT_GT(domain.cache_stats().weight_rows, 0u);

  domain.set_cache_mode(NgramDomain::CacheMode::kShared);
  EXPECT_EQ(domain.cache_stats().weight_rows, 0u);
  EXPECT_EQ(domain.cache_stats().suffix_rows, 0u);
  EXPECT_EQ(domain.cache_mode(), NgramDomain::CacheMode::kShared);

  // A no-op switch must NOT clear (mode already active).
  ASSERT_TRUE(domain.Sample({r0}, 1.0, rng).ok());
  const auto before = domain.cache_stats();
  ASSERT_GT(before.weight_rows, 0u);
  domain.set_cache_mode(NgramDomain::CacheMode::kShared);
  EXPECT_EQ(domain.cache_stats().weight_rows, before.weight_rows);
}

// ClearCache() reaches per-thread replicas through the generation
// counter: the replica empties at its next draw, then repopulates, and
// the draws themselves never change.
TEST_F(CacheModesTest, ClearCacheReachesReplicasAtNextDraw) {
  NgramDomain domain(graph_.get(), distance_.get());
  domain.set_cache_mode(NgramDomain::CacheMode::kPerThread);
  const region::RegionId r0 = *decomp_->Lookup(0, 54);
  const std::vector<region::RegionId> input = {r0};

  SamplerWorkspace ws;
  Rng rng(13);
  std::vector<region::RegionId> out;
  ASSERT_TRUE(domain
                  .SampleInto(std::span<const region::RegionId>(input), 1.0,
                              rng, ws, out)
                  .ok());
  ASSERT_NE(ws.replica, nullptr);
  const auto before = ws.replica->stats();
  ASSERT_GT(before.weight_rows, 0u);

  domain.ClearCache();
  // The clear is lazy: nothing changes until the next draw syncs.
  EXPECT_EQ(ws.replica->stats().weight_rows, before.weight_rows);

  ASSERT_TRUE(domain
                  .SampleInto(std::span<const region::RegionId>(input), 1.0,
                              rng, ws, out)
                  .ok());
  // The draw re-missed into a freshly cleared replica.
  EXPECT_EQ(ws.replica->stats().weight_misses, before.weight_misses + 1);
}

// BatchReleaseEngine::Config.cache_mode reaches the domain.
TEST_F(CacheModesTest, EngineConfigSelectsCacheMode) {
  NgramDomain domain(graph_.get(), distance_.get());
  ASSERT_EQ(domain.cache_mode(), NgramDomain::CacheMode::kSharded);
  NgramPerturber perturber(&domain, NgramPerturber::Config{2, 5.0});

  BatchReleaseEngine::Config config;
  config.num_threads = 2;
  config.cache_mode = NgramDomain::CacheMode::kPerThread;
  BatchReleaseEngine engine(&perturber, config);
  EXPECT_EQ(domain.cache_mode(), NgramDomain::CacheMode::kPerThread);

  // Unset leaves the domain's current mode alone.
  BatchReleaseEngine untouched(&perturber, BatchReleaseEngine::Config{2});
  EXPECT_EQ(domain.cache_mode(), NgramDomain::CacheMode::kPerThread);
}

// ---------- Concurrent shrink / clear stress ----------

// Satellites 2 & 6 of ISSUE 8: capacity shrinks and ClearCache() racing
// live draws. Workers hold shared_ptr pins on borrowed rows, so churn
// frees memory without ever invalidating a row mid-read — and because
// every worker owns its Rng stream, the draw sequences must equal a
// quiet single-threaded replay no matter how the churn interleaves.
class CacheStressTest : public CacheModesTest {};

TEST_F(CacheStressTest, CapacityChurnAndClearNeverChangeDraws) {
  constexpr size_t kWorkers = 4;
  constexpr int kRounds = 30;
  const Rng root(20260808);

  // Quiet reference: each worker's stream replayed on an undisturbed
  // domain.
  std::vector<std::vector<std::vector<region::RegionId>>> expected(
      kWorkers);
  {
    NgramDomain reference(graph_.get(), distance_.get());
    for (size_t w = 0; w < kWorkers; ++w) {
      SamplerWorkspace ws;
      Rng rng = root.Substream(w);
      const auto inputs = MakeInputs();
      std::vector<region::RegionId> out;
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& input : inputs) {
          ASSERT_TRUE(reference
                          .SampleInto(
                              std::span<const region::RegionId>(input),
                              0.5 + 0.01 * round, rng, ws, out)
                          .ok());
          expected[w].push_back(out);
        }
      }
    }
  }

  for (const NgramDomain::CacheMode mode : kAllModes) {
    NgramDomain domain(graph_.get(), distance_.get());
    domain.set_cache_mode(mode);
    std::vector<std::vector<std::vector<region::RegionId>>> got(kWorkers);
    std::atomic<bool> done{false};

    std::vector<std::thread> workers;
    for (size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        SamplerWorkspace ws;
        Rng rng = root.Substream(w);
        const auto inputs = MakeInputs();
        std::vector<region::RegionId> out;
        for (int round = 0; round < kRounds; ++round) {
          for (const auto& input : inputs) {
            const Status status = domain.SampleInto(
                std::span<const region::RegionId>(input),
                0.5 + 0.01 * round, rng, ws, out);
            ASSERT_TRUE(status.ok()) << status;
            got[w].push_back(out);
          }
        }
      });
    }

    // Churn thread: shrink, grow, and clear while the draws run.
    std::thread churn([&] {
      size_t step = 0;
      while (!done.load(std::memory_order_relaxed)) {
        switch (step++ % 4) {
          case 0:
            domain.set_cache_capacity(1);
            break;
          case 1:
            domain.ClearCache();
            break;
          case 2:
            domain.set_cache_capacity(8);
            break;
          default:
            domain.set_cache_capacity(0);
            break;
        }
        std::this_thread::yield();
      }
    });

    for (auto& worker : workers) worker.join();
    done.store(true, std::memory_order_relaxed);
    churn.join();

    for (size_t w = 0; w < kWorkers; ++w) {
      EXPECT_EQ(got[w], expected[w])
          << ModeName(mode) << " worker " << w;
    }
  }
}

// The NgramDomain::ClearCache() doc promises clears are safe against
// concurrent SampleInto. Hammer exactly that pair — one thread clearing
// in a tight loop, one thread drawing — in the stripe-backed modes
// (replica clears are lazy and covered above).
TEST_F(CacheStressTest, ClearWhileSamplingIsSafeAndBitIdentical) {
  const auto inputs = MakeInputs();
  constexpr int kDraws = 400;

  // Quiet reference.
  std::vector<std::vector<region::RegionId>> expected;
  {
    NgramDomain reference(graph_.get(), distance_.get());
    SamplerWorkspace ws;
    Rng rng(31337);
    std::vector<region::RegionId> out;
    for (int i = 0; i < kDraws; ++i) {
      const auto& input = inputs[i % inputs.size()];
      ASSERT_TRUE(reference
                      .SampleInto(std::span<const region::RegionId>(input),
                                  1.0, rng, ws, out)
                      .ok());
      expected.push_back(out);
    }
  }

  for (const NgramDomain::CacheMode mode :
       {NgramDomain::CacheMode::kShared, NgramDomain::CacheMode::kSharded}) {
    NgramDomain domain(graph_.get(), distance_.get());
    domain.set_cache_mode(mode);
    std::atomic<bool> done{false};
    std::thread clearer([&] {
      while (!done.load(std::memory_order_relaxed)) {
        domain.ClearCache();
        std::this_thread::yield();
      }
    });

    std::vector<std::vector<region::RegionId>> got;
    SamplerWorkspace ws;
    Rng rng(31337);
    std::vector<region::RegionId> out;
    for (int i = 0; i < kDraws; ++i) {
      const auto& input = inputs[i % inputs.size()];
      ASSERT_TRUE(domain
                      .SampleInto(std::span<const region::RegionId>(input),
                                  1.0, rng, ws, out)
                      .ok());
      got.push_back(out);
    }
    done.store(true, std::memory_order_relaxed);
    clearer.join();

    EXPECT_EQ(got, expected) << ModeName(mode);
  }
}

}  // namespace
}  // namespace trajldp::core
