#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "core/lp_reconstructor.h"
#include "core/ngram_perturber.h"
#include "core/reconstruction.h"
#include "core/viterbi_reconstructor.h"
#include "region/region_index.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;

class ReconstructionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    region::DecompositionConfig config;
    config.grid_size = 2;
    config.coarse_grids = {1};
    config.base_interval_minutes = 360;
    config.merge.kappa = 1;
    auto decomp = region::StcDecomposition::Build(db_.get(), time_, config);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<region::StcDecomposition>(std::move(*decomp));
    distance_ = std::make_unique<region::RegionDistance>(decomp_.get());
    model::ReachabilityConfig reach;
    reach.speed_kmh = 8.0;
    reach.reference_gap_minutes = 60;
    graph_ = std::make_unique<region::RegionGraph>(
        region::RegionGraph::Build(*decomp_, reach));
    domain_ = std::make_unique<NgramDomain>(graph_.get(), distance_.get());
  }

  // All regions as the candidate set.
  std::vector<region::RegionId> AllRegions() const {
    std::vector<region::RegionId> all(decomp_->num_regions());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<region::RegionId>(i);
    }
    return all;
  }

  // Generates a random perturbed-n-gram set for a trajectory of `len`.
  PerturbedNgramSet RandomZ(size_t len, uint64_t seed) {
    NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
    region::RegionTrajectory tau;
    for (size_t i = 0; i < len; ++i) {
      tau.push_back(*decomp_->Lookup(static_cast<model::PoiId>(i),
                                     static_cast<model::Timestep>(60 + 6 * i)));
    }
    Rng rng(seed);
    auto z = perturber.Perturb(tau, rng);
    EXPECT_TRUE(z.ok());
    return *z;
  }

  // Brute-force optimum over all feasible candidate assignments.
  double BruteForceOptimum(const ReconstructionProblem& problem) const {
    const size_t len = problem.traj_len();
    const size_t num_cand = problem.candidates().size();
    double best = std::numeric_limits<double>::infinity();
    std::vector<size_t> assignment(len, 0);
    // Odometer enumeration of num_cand^len assignments.
    while (true) {
      bool feasible = true;
      for (size_t i = 0; i + 1 < len && feasible; ++i) {
        feasible = problem.Feasible(assignment[i], assignment[i + 1]);
      }
      if (feasible) best = std::min(best, problem.Objective(assignment));
      size_t k = 0;
      while (k < len && ++assignment[k] == num_cand) {
        assignment[k] = 0;
        ++k;
      }
      if (k == len) break;
    }
    return best;
  }

  double ObjectiveOf(const ReconstructionProblem& problem,
                     const region::RegionTrajectory& result) const {
    std::vector<size_t> assignment(result.size());
    const auto& cands = problem.candidates();
    for (size_t i = 0; i < result.size(); ++i) {
      assignment[i] = static_cast<size_t>(
          std::lower_bound(cands.begin(), cands.end(), result[i]) -
          cands.begin());
    }
    return problem.Objective(assignment);
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<region::StcDecomposition> decomp_;
  std::unique_ptr<region::RegionDistance> distance_;
  std::unique_ptr<region::RegionGraph> graph_;
  std::unique_ptr<NgramDomain> domain_;
};

TEST_F(ReconstructionFixture, NodeErrorMatchesManualSum) {
  const auto z = RandomZ(3, 11);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               3, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  // e(r, i) = Σ over n-grams covering i of d(r, observed at i) (eq. 8).
  for (size_t i = 1; i <= 3; ++i) {
    for (size_t c = 0; c < 5; ++c) {
      double expected = 0.0;
      for (const PerturbedNgram& gram : z) {
        if (gram.Covers(i)) {
          expected += distance_->Between(problem->candidates()[c],
                                         gram.RegionAt(i));
        }
      }
      EXPECT_NEAR(problem->NodeError(i - 1, c), expected, 1e-9);
    }
  }
}

TEST_F(ReconstructionFixture, MultiplicitiesAreOneTwoTwoOne) {
  const auto z = RandomZ(4, 12);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               4, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  EXPECT_DOUBLE_EQ(problem->Multiplicity(0), 1.0);
  EXPECT_DOUBLE_EQ(problem->Multiplicity(1), 2.0);
  EXPECT_DOUBLE_EQ(problem->Multiplicity(2), 2.0);
  EXPECT_DOUBLE_EQ(problem->Multiplicity(3), 1.0);
}

TEST_F(ReconstructionFixture, ObjectiveDecomposesIntoWeightedNodeErrors) {
  const auto z = RandomZ(4, 13);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               4, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  const std::vector<size_t> assignment = {0, 1, 2, 3};
  double weighted = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    weighted += problem->Multiplicity(i) * problem->NodeError(i, assignment[i]);
  }
  EXPECT_NEAR(problem->Objective(assignment), weighted, 1e-9);
}

TEST_F(ReconstructionFixture, ViterbiMatchesBruteForce) {
  for (uint64_t seed : {21, 22, 23, 24}) {
    const auto z = RandomZ(4, seed);
    // Restrict candidates to a small set so brute force stays tractable;
    // include the observed regions to guarantee feasibility.
    std::vector<region::RegionId> observed;
    for (const auto& gram : z) {
      observed.insert(observed.end(), gram.regions.begin(),
                      gram.regions.end());
    }
    std::sort(observed.begin(), observed.end());
    observed.erase(std::unique(observed.begin(), observed.end()),
                   observed.end());
    auto problem = ReconstructionProblem::Create(
        distance_.get(), graph_.get(), 4, z, observed);
    ASSERT_TRUE(problem.ok());

    ViterbiReconstructor viterbi;
    auto result = viterbi.Reconstruct(*problem);
    if (!result.ok()) {
      // No feasible path over this candidate set: brute force must agree.
      EXPECT_TRUE(std::isinf(BruteForceOptimum(*problem)));
      continue;
    }
    EXPECT_NEAR(ObjectiveOf(*problem, *result), BruteForceOptimum(*problem),
                1e-9)
        << "seed " << seed;
  }
}

TEST_F(ReconstructionFixture, LpMatchesViterbiObjective) {
  for (uint64_t seed : {31, 32, 33}) {
    const auto z = RandomZ(3, seed);
    std::vector<region::RegionId> observed;
    for (const auto& gram : z) {
      observed.insert(observed.end(), gram.regions.begin(),
                      gram.regions.end());
    }
    std::sort(observed.begin(), observed.end());
    observed.erase(std::unique(observed.begin(), observed.end()),
                   observed.end());
    auto problem = ReconstructionProblem::Create(
        distance_.get(), graph_.get(), 3, z, observed);
    ASSERT_TRUE(problem.ok());

    ViterbiReconstructor viterbi;
    LpReconstructor lp;
    auto dp_result = viterbi.Reconstruct(*problem);
    auto lp_result = lp.Reconstruct(*problem);
    ASSERT_EQ(dp_result.ok(), lp_result.ok()) << "seed " << seed;
    if (!dp_result.ok()) continue;
    EXPECT_NEAR(ObjectiveOf(*problem, *dp_result),
                ObjectiveOf(*problem, *lp_result), 1e-6)
        << "seed " << seed;
  }
}

TEST_F(ReconstructionFixture, ReconstructedSequencesAreFeasible) {
  const auto z = RandomZ(5, 41);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               5, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  ViterbiReconstructor viterbi;
  auto result = viterbi.Reconstruct(*problem);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 5u);
  for (size_t i = 0; i + 1 < result->size(); ++i) {
    EXPECT_TRUE(graph_->HasEdge((*result)[i], (*result)[i + 1]));
  }
}

TEST_F(ReconstructionFixture, SinglePointPicksArgminNodeError) {
  const auto z = RandomZ(1, 51);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               1, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  ViterbiReconstructor viterbi;
  auto result = viterbi.Reconstruct(*problem);
  ASSERT_TRUE(result.ok());
  // Verify optimality directly.
  double best = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < problem->candidates().size(); ++c) {
    best = std::min(best, problem->NodeError(0, c));
  }
  const size_t chosen = static_cast<size_t>(
      std::lower_bound(problem->candidates().begin(),
                       problem->candidates().end(), (*result)[0]) -
      problem->candidates().begin());
  EXPECT_NEAR(problem->NodeError(0, chosen), best, 1e-12);
}

TEST_F(ReconstructionFixture, CreateValidatesInputs) {
  const auto z = RandomZ(3, 61);
  // Unsorted candidates.
  EXPECT_FALSE(ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                             3, z, {3, 1, 2})
                   .ok());
  // Empty candidates.
  EXPECT_FALSE(ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                             3, z, {})
                   .ok());
  // Zero-length trajectory.
  EXPECT_FALSE(ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                             0, z, AllRegions())
                   .ok());
  // Malformed n-gram (wrong region count).
  PerturbedNgramSet bad = {{1, 2, {0}}};
  EXPECT_FALSE(ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                             2, bad, AllRegions())
                   .ok());
}

TEST_F(ReconstructionFixture, InfeasibleCandidateSetReported) {
  const auto z = RandomZ(2, 71);
  // Find two regions with no edge either way, if any exist.
  region::RegionId a = region::kInvalidRegion, b = region::kInvalidRegion;
  for (region::RegionId x = 0;
       x < decomp_->num_regions() && a == region::kInvalidRegion; ++x) {
    for (region::RegionId y = 0; y < decomp_->num_regions(); ++y) {
      if (x != y && !graph_->HasEdge(x, y) && !graph_->HasEdge(y, x) &&
          !graph_->HasEdge(x, x) && !graph_->HasEdge(y, y)) {
        a = x;
        b = y;
        break;
      }
    }
  }
  if (a == region::kInvalidRegion) {
    GTEST_SKIP() << "graph too dense to craft an infeasible candidate set";
  }
  std::vector<region::RegionId> candidates = {std::min(a, b),
                                              std::max(a, b)};
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               2, z, candidates);
  ASSERT_TRUE(problem.ok());
  ViterbiReconstructor viterbi;
  auto result = viterbi.Reconstruct(*problem);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  LpReconstructor lp;
  auto lp_result = lp.Reconstruct(*problem);
  EXPECT_FALSE(lp_result.ok());
}

}  // namespace
}  // namespace trajldp::core
