#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "core/lp_reconstructor.h"
#include "core/ngram_perturber.h"
#include "core/reconstruction.h"
#include "core/viterbi_reconstructor.h"
#include "region/region_index.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;

class ReconstructionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    region::DecompositionConfig config;
    config.grid_size = 2;
    config.coarse_grids = {1};
    config.base_interval_minutes = 360;
    config.merge.kappa = 1;
    auto decomp = region::StcDecomposition::Build(db_.get(), time_, config);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<region::StcDecomposition>(std::move(*decomp));
    distance_ = std::make_unique<region::RegionDistance>(decomp_.get());
    model::ReachabilityConfig reach;
    reach.speed_kmh = 8.0;
    reach.reference_gap_minutes = 60;
    graph_ = std::make_unique<region::RegionGraph>(
        region::RegionGraph::Build(*decomp_, reach));
    domain_ = std::make_unique<NgramDomain>(graph_.get(), distance_.get());
  }

  // All regions as the candidate set.
  std::vector<region::RegionId> AllRegions() const {
    std::vector<region::RegionId> all(decomp_->num_regions());
    for (size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<region::RegionId>(i);
    }
    return all;
  }

  // Generates a random perturbed-n-gram set for a trajectory of `len`.
  PerturbedNgramSet RandomZ(size_t len, uint64_t seed) {
    NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
    region::RegionTrajectory tau;
    for (size_t i = 0; i < len; ++i) {
      tau.push_back(*decomp_->Lookup(static_cast<model::PoiId>(i),
                                     static_cast<model::Timestep>(60 + 6 * i)));
    }
    Rng rng(seed);
    auto z = perturber.Perturb(tau, rng);
    EXPECT_TRUE(z.ok());
    return *z;
  }

  // Brute-force optimum over all feasible candidate assignments.
  double BruteForceOptimum(const ReconstructionProblem& problem) const {
    const size_t len = problem.traj_len();
    const size_t num_cand = problem.candidates().size();
    double best = std::numeric_limits<double>::infinity();
    std::vector<size_t> assignment(len, 0);
    // Odometer enumeration of num_cand^len assignments.
    while (true) {
      bool feasible = true;
      for (size_t i = 0; i + 1 < len && feasible; ++i) {
        feasible = problem.Feasible(assignment[i], assignment[i + 1]);
      }
      if (feasible) best = std::min(best, problem.Objective(assignment));
      size_t k = 0;
      while (k < len && ++assignment[k] == num_cand) {
        assignment[k] = 0;
        ++k;
      }
      if (k == len) break;
    }
    return best;
  }

  double ObjectiveOf(const ReconstructionProblem& problem,
                     const region::RegionTrajectory& result) const {
    std::vector<size_t> assignment(result.size());
    const auto& cands = problem.candidates();
    for (size_t i = 0; i < result.size(); ++i) {
      assignment[i] = static_cast<size_t>(
          std::lower_bound(cands.begin(), cands.end(), result[i]) -
          cands.begin());
    }
    return problem.Objective(assignment);
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<region::StcDecomposition> decomp_;
  std::unique_ptr<region::RegionDistance> distance_;
  std::unique_ptr<region::RegionGraph> graph_;
  std::unique_ptr<NgramDomain> domain_;
};

TEST_F(ReconstructionFixture, NodeErrorMatchesManualSum) {
  const auto z = RandomZ(3, 11);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               3, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  // e(r, i) = Σ over n-grams covering i of d(r, observed at i) (eq. 8),
  // with distances read from the precomputed float table exactly as the
  // problem builds them.
  for (size_t i = 1; i <= 3; ++i) {
    for (size_t c = 0; c < 5; ++c) {
      double expected = 0.0;
      for (const PerturbedNgram& gram : z) {
        if (gram.Covers(i)) {
          expected += static_cast<double>(
              distance_->ToAll(gram.RegionAt(i))[problem->candidates()[c]]);
        }
      }
      EXPECT_NEAR(problem->NodeError(i - 1, c), expected, 1e-9);
      // The float table is the rounded Between(); the node error must
      // stay within float precision of the exact eq. 8 sum.
      double exact = 0.0;
      for (const PerturbedNgram& gram : z) {
        if (gram.Covers(i)) {
          exact += distance_->Between(problem->candidates()[c],
                                      gram.RegionAt(i));
        }
      }
      EXPECT_NEAR(problem->NodeError(i - 1, c), exact,
                  1e-5 * (1.0 + exact));
    }
  }
}

TEST_F(ReconstructionFixture, MultiplicitiesAreOneTwoTwoOne) {
  const auto z = RandomZ(4, 12);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               4, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  EXPECT_DOUBLE_EQ(problem->Multiplicity(0), 1.0);
  EXPECT_DOUBLE_EQ(problem->Multiplicity(1), 2.0);
  EXPECT_DOUBLE_EQ(problem->Multiplicity(2), 2.0);
  EXPECT_DOUBLE_EQ(problem->Multiplicity(3), 1.0);
}

TEST_F(ReconstructionFixture, ObjectiveDecomposesIntoWeightedNodeErrors) {
  const auto z = RandomZ(4, 13);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               4, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  const std::vector<size_t> assignment = {0, 1, 2, 3};
  double weighted = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    weighted += problem->Multiplicity(i) * problem->NodeError(i, assignment[i]);
  }
  EXPECT_NEAR(problem->Objective(assignment), weighted, 1e-9);
}

TEST_F(ReconstructionFixture, ViterbiMatchesBruteForce) {
  for (uint64_t seed : {21, 22, 23, 24}) {
    const auto z = RandomZ(4, seed);
    // Restrict candidates to a small set so brute force stays tractable;
    // include the observed regions to guarantee feasibility.
    std::vector<region::RegionId> observed;
    for (const auto& gram : z) {
      observed.insert(observed.end(), gram.regions.begin(),
                      gram.regions.end());
    }
    std::sort(observed.begin(), observed.end());
    observed.erase(std::unique(observed.begin(), observed.end()),
                   observed.end());
    auto problem = ReconstructionProblem::Create(
        distance_.get(), graph_.get(), 4, z, observed);
    ASSERT_TRUE(problem.ok());

    ViterbiReconstructor viterbi;
    auto result = viterbi.Reconstruct(*problem);
    if (!result.ok()) {
      // No feasible path over this candidate set: brute force must agree.
      EXPECT_TRUE(std::isinf(BruteForceOptimum(*problem)));
      continue;
    }
    EXPECT_NEAR(ObjectiveOf(*problem, *result), BruteForceOptimum(*problem),
                1e-9)
        << "seed " << seed;
  }
}

TEST_F(ReconstructionFixture, LpMatchesViterbiObjective) {
  for (uint64_t seed : {31, 32, 33}) {
    const auto z = RandomZ(3, seed);
    std::vector<region::RegionId> observed;
    for (const auto& gram : z) {
      observed.insert(observed.end(), gram.regions.begin(),
                      gram.regions.end());
    }
    std::sort(observed.begin(), observed.end());
    observed.erase(std::unique(observed.begin(), observed.end()),
                   observed.end());
    auto problem = ReconstructionProblem::Create(
        distance_.get(), graph_.get(), 3, z, observed);
    ASSERT_TRUE(problem.ok());

    ViterbiReconstructor viterbi;
    LpReconstructor lp;
    auto dp_result = viterbi.Reconstruct(*problem);
    auto lp_result = lp.Reconstruct(*problem);
    ASSERT_EQ(dp_result.ok(), lp_result.ok()) << "seed " << seed;
    if (!dp_result.ok()) continue;
    EXPECT_NEAR(ObjectiveOf(*problem, *dp_result),
                ObjectiveOf(*problem, *lp_result), 1e-6)
        << "seed " << seed;
  }
}

// ---------- Solver equivalence on randomized small worlds ----------

// Property-style sweep: for each seed, build a randomized small world
// (lattice shape, spacing, and opening hours all drawn from the seed),
// perturb a random trajectory, restrict to a random candidate superset of
// the observed regions, and check that the DP and LP solvers agree on the
// optimal objective. An objective-multiplicity regression in
// ReconstructionProblem (the {1, 2, ..., 2, 1} position weights) skews
// the two solvers differently, so equal objectives are the guard.
class SolverEquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverEquivalenceSweep, ViterbiAndLpAgreeOnObjective) {
  const uint64_t seed = GetParam();
  Rng world_rng(seed * 7919 + 1);

  trajldp::testing::GridWorldOptions options;
  options.rows = 3 + static_cast<int>(world_rng.UniformUint64(3));
  options.cols = 3 + static_cast<int>(world_rng.UniformUint64(3));
  options.spacing_km = 0.5 + world_rng.UniformDouble() * 1.5;
  options.restrict_odd_hours = world_rng.Bernoulli(0.5);
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);

  region::DecompositionConfig dconfig;
  dconfig.grid_size = 2;
  dconfig.coarse_grids = {1};
  dconfig.base_interval_minutes = 360;
  dconfig.merge.kappa = 1;
  auto decomp = region::StcDecomposition::Build(&*db, time, dconfig);
  ASSERT_TRUE(decomp.ok());
  region::RegionDistance distance(&*decomp);
  model::ReachabilityConfig reach;
  reach.speed_kmh = 6.0 + world_rng.UniformDouble() * 24.0;
  reach.reference_gap_minutes = 60;
  const auto graph = region::RegionGraph::Build(*decomp, reach);
  NgramDomain domain(&graph, &distance);
  NgramPerturber perturber(&domain, NgramPerturber::Config{2, 5.0});

  const size_t num_regions = decomp->num_regions();
  const size_t len = 2 + static_cast<size_t>(world_rng.UniformUint64(3));
  region::RegionTrajectory tau;
  for (size_t i = 0; i < len; ++i) {
    tau.push_back(
        static_cast<region::RegionId>(world_rng.UniformUint64(num_regions)));
  }
  auto z = perturber.Perturb(tau, world_rng);
  ASSERT_TRUE(z.ok());

  // Candidates: the observed regions plus a random sprinkle of others.
  std::vector<region::RegionId> candidates;
  for (const auto& gram : *z) {
    candidates.insert(candidates.end(), gram.regions.begin(),
                      gram.regions.end());
  }
  for (region::RegionId r = 0; r < num_regions; ++r) {
    if (world_rng.Bernoulli(0.4)) candidates.push_back(r);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  auto problem = ReconstructionProblem::Create(&distance, &graph, len, *z,
                                               candidates);
  ASSERT_TRUE(problem.ok());

  ViterbiReconstructor viterbi;
  LpReconstructor lp;
  auto dp_result = viterbi.Reconstruct(*problem);
  auto lp_result = lp.Reconstruct(*problem);
  ASSERT_EQ(dp_result.ok(), lp_result.ok())
      << "seed " << seed << ": DP " << dp_result.status() << ", LP "
      << lp_result.status();
  if (!dp_result.ok()) return;  // both infeasible — agreement confirmed

  auto objective_of = [&](const region::RegionTrajectory& result) {
    std::vector<size_t> assignment(result.size());
    const auto& cands = problem->candidates();
    for (size_t i = 0; i < result.size(); ++i) {
      assignment[i] = static_cast<size_t>(
          std::lower_bound(cands.begin(), cands.end(), result[i]) -
          cands.begin());
    }
    return problem->Objective(assignment);
  };
  const double dp_obj = objective_of(*dp_result);
  const double lp_obj = objective_of(*lp_result);
  EXPECT_NEAR(dp_obj, lp_obj, 1e-6 * (1.0 + std::abs(dp_obj)))
      << "seed " << seed;

  // Both solutions must be feasible region sequences.
  for (size_t i = 0; i + 1 < dp_result->size(); ++i) {
    EXPECT_TRUE(graph.HasEdge((*dp_result)[i], (*dp_result)[i + 1]));
    EXPECT_TRUE(graph.HasEdge((*lp_result)[i], (*lp_result)[i + 1]));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomWorlds, SolverEquivalenceSweep,
                         ::testing::Range<uint64_t>(0, 12));

TEST_F(ReconstructionFixture, ResetReusesBuffersAcrossProblems) {
  // One problem object re-initialised per user must behave exactly like a
  // freshly created one — this is the invariant the per-thread pipeline
  // workspaces rely on.
  ReconstructionProblem reused;
  ViterbiReconstructor viterbi;
  auto ws = viterbi.NewWorkspace();
  for (uint64_t seed : {81, 82, 83, 84}) {
    const size_t len = 2 + static_cast<size_t>(seed % 3);
    const auto z = RandomZ(len, seed);
    auto fresh = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               len, z, AllRegions());
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(reused
                    .Reset(distance_.get(), graph_.get(), len, z,
                           AllRegions())
                    .ok());
    ASSERT_EQ(reused.candidates(), fresh->candidates());
    for (size_t i = 0; i < len; ++i) {
      for (size_t c = 0; c < reused.candidates().size(); ++c) {
        ASSERT_DOUBLE_EQ(reused.NodeError(i, c), fresh->NodeError(i, c));
      }
    }
    region::RegionTrajectory via_workspace;
    ASSERT_TRUE(
        viterbi.ReconstructInto(reused, *ws, via_workspace).ok());
    auto via_fresh = viterbi.Reconstruct(*fresh);
    ASSERT_TRUE(via_fresh.ok());
    EXPECT_EQ(via_workspace, *via_fresh) << "seed " << seed;
  }
}

TEST_F(ReconstructionFixture, MismatchedWorkspaceTypeIsRejected) {
  const auto z = RandomZ(3, 91);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               3, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  ViterbiReconstructor viterbi;
  LpReconstructor lp;
  auto viterbi_ws = viterbi.NewWorkspace();
  auto lp_ws = lp.NewWorkspace();
  region::RegionTrajectory out;
  EXPECT_EQ(viterbi.ReconstructInto(*problem, *lp_ws, out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(lp.ReconstructInto(*problem, *viterbi_ws, out).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ReconstructionFixture, ReconstructedSequencesAreFeasible) {
  const auto z = RandomZ(5, 41);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               5, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  ViterbiReconstructor viterbi;
  auto result = viterbi.Reconstruct(*problem);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 5u);
  for (size_t i = 0; i + 1 < result->size(); ++i) {
    EXPECT_TRUE(graph_->HasEdge((*result)[i], (*result)[i + 1]));
  }
}

TEST_F(ReconstructionFixture, SinglePointPicksArgminNodeError) {
  const auto z = RandomZ(1, 51);
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               1, z, AllRegions());
  ASSERT_TRUE(problem.ok());
  ViterbiReconstructor viterbi;
  auto result = viterbi.Reconstruct(*problem);
  ASSERT_TRUE(result.ok());
  // Verify optimality directly.
  double best = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < problem->candidates().size(); ++c) {
    best = std::min(best, problem->NodeError(0, c));
  }
  const size_t chosen = static_cast<size_t>(
      std::lower_bound(problem->candidates().begin(),
                       problem->candidates().end(), (*result)[0]) -
      problem->candidates().begin());
  EXPECT_NEAR(problem->NodeError(0, chosen), best, 1e-12);
}

TEST_F(ReconstructionFixture, CreateValidatesInputs) {
  const auto z = RandomZ(3, 61);
  // Unsorted candidates.
  EXPECT_FALSE(ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                             3, z, {3, 1, 2})
                   .ok());
  // Empty candidates.
  EXPECT_FALSE(ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                             3, z, {})
                   .ok());
  // Zero-length trajectory.
  EXPECT_FALSE(ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                             0, z, AllRegions())
                   .ok());
  // Malformed n-gram (wrong region count).
  PerturbedNgramSet bad = {{1, 2, {0}}};
  EXPECT_FALSE(ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                             2, bad, AllRegions())
                   .ok());
}

TEST_F(ReconstructionFixture, InfeasibleCandidateSetReported) {
  const auto z = RandomZ(2, 71);
  // Find two regions with no edge either way, if any exist.
  region::RegionId a = region::kInvalidRegion, b = region::kInvalidRegion;
  for (region::RegionId x = 0;
       x < decomp_->num_regions() && a == region::kInvalidRegion; ++x) {
    for (region::RegionId y = 0; y < decomp_->num_regions(); ++y) {
      if (x != y && !graph_->HasEdge(x, y) && !graph_->HasEdge(y, x) &&
          !graph_->HasEdge(x, x) && !graph_->HasEdge(y, y)) {
        a = x;
        b = y;
        break;
      }
    }
  }
  if (a == region::kInvalidRegion) {
    GTEST_SKIP() << "graph too dense to craft an infeasible candidate set";
  }
  std::vector<region::RegionId> candidates = {std::min(a, b),
                                              std::max(a, b)};
  auto problem = ReconstructionProblem::Create(distance_.get(), graph_.get(),
                                               2, z, candidates);
  ASSERT_TRUE(problem.ok());
  ViterbiReconstructor viterbi;
  auto result = viterbi.Reconstruct(*problem);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  LpReconstructor lp;
  auto lp_result = lp.Reconstruct(*problem);
  EXPECT_FALSE(lp_result.ok());
}

}  // namespace
}  // namespace trajldp::core
