#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/global_mechanism.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

class GlobalMechanismFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Tiny world: 2×2 lattice (4 POIs), 6 timesteps of 240 minutes.
    trajldp::testing::GridWorldOptions options;
    options.rows = 2;
    options.cols = 2;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(240);
  }

  GlobalMechanism::Config DefaultConfig() const {
    GlobalMechanism::Config config;
    config.epsilon = 5.0;
    config.reachability.speed_kmh = 8.0;
    return config;
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
};

TEST_F(GlobalMechanismFixture, EnumerationMatchesCount) {
  auto mech = GlobalMechanism::Create(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok());
  for (size_t len : {1, 2, 3}) {
    auto candidates = mech->EnumerateCandidates(len);
    ASSERT_TRUE(candidates.ok()) << "len " << len;
    EXPECT_DOUBLE_EQ(static_cast<double>(candidates->size()),
                     mech->CountCandidates(len))
        << "len " << len;
    // Every candidate is feasible and of the right length.
    const model::Reachability reach(db_.get(), time_,
                                    DefaultConfig().reachability);
    for (const auto& traj : *candidates) {
      EXPECT_EQ(traj.size(), len);
      EXPECT_TRUE(reach.CheckFeasible(traj).ok());
    }
  }
}

TEST_F(GlobalMechanismFixture, UnconstrainedCountIsClosedForm) {
  GlobalMechanism::Config config = DefaultConfig();
  config.reachability = model::ReachabilityConfig::Unconstrained();
  auto mech = GlobalMechanism::Create(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  // All POIs always open, no reachability: |S| = |P|^L × C(|T|, L).
  const double p = static_cast<double>(db_->size());
  const double t = static_cast<double>(time_.num_timesteps());
  EXPECT_DOUBLE_EQ(mech->CountCandidates(1), p * t);
  EXPECT_DOUBLE_EQ(mech->CountCandidates(2), p * p * t * (t - 1) / 2.0);
}

TEST_F(GlobalMechanismFixture, EnumerationCapTriggersResourceExhausted) {
  GlobalMechanism::Config config = DefaultConfig();
  config.max_candidates = 5;
  auto mech = GlobalMechanism::Create(db_.get(), time_, config);
  ASSERT_TRUE(mech.ok());
  auto candidates = mech->EnumerateCandidates(2);
  EXPECT_FALSE(candidates.ok());
  EXPECT_EQ(candidates.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GlobalMechanismFixture, PerturbReturnsFeasibleTrajectory) {
  auto mech = GlobalMechanism::Create(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok());
  const auto input = MakeTrajectory({{0, 1}, {1, 3}});
  Rng rng(3);
  auto output = mech->Perturb(input, rng);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->size(), 2u);
  const model::Reachability reach(db_.get(), time_,
                                  DefaultConfig().reachability);
  EXPECT_TRUE(reach.CheckFeasible(*output).ok());
}

TEST_F(GlobalMechanismFixture, HigherEpsilonConcentratesOnTruth) {
  GlobalMechanism::Config strict = DefaultConfig();
  strict.epsilon = 200.0;
  auto mech = GlobalMechanism::Create(db_.get(), time_, strict);
  ASSERT_TRUE(mech.ok());
  const auto input = MakeTrajectory({{0, 1}, {1, 3}});
  int exact = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto output = mech->Perturb(input, rng);
    ASSERT_TRUE(output.ok());
    if (*output == input) ++exact;
  }
  EXPECT_GT(exact, 15);
}

TEST_F(GlobalMechanismFixture, SamplerVariantsProduceValidOutputs) {
  for (auto sampler : {GlobalMechanism::Sampler::kExponential,
                       GlobalMechanism::Sampler::kPermuteAndFlip,
                       GlobalMechanism::Sampler::kSubsampledEm}) {
    GlobalMechanism::Config config = DefaultConfig();
    config.sampler = sampler;
    config.subsample_size = 16;
    auto mech = GlobalMechanism::Create(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok());
    const auto input = MakeTrajectory({{0, 1}, {1, 3}});
    Rng rng(11);
    auto output = mech->Perturb(input, rng);
    ASSERT_TRUE(output.ok());
    EXPECT_EQ(output->size(), 2u);
  }
}

TEST_F(GlobalMechanismFixture, UtilityBoundTheorem51) {
  auto mech = GlobalMechanism::Create(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok());
  // (2Δd_τ/ε)(ln|S| + ζ) with Δd_τ = L · point-diameter.
  const double bound = mech->UtilityBound(2, 1.0);
  const double expected = 2.0 * 2.0 * mech->distance().MaxDistance() / 5.0 *
                          (std::log(mech->CountCandidates(2)) + 1.0);
  EXPECT_NEAR(bound, expected, 1e-9);
}

TEST_F(GlobalMechanismFixture, EmpiricalUtilityRespectsTheorem51) {
  // With ζ = 3 the failure probability is e^{−3} ≈ 5%; check the bound
  // holds in at least ~90% of trials.
  auto mech = GlobalMechanism::Create(db_.get(), time_, DefaultConfig());
  ASSERT_TRUE(mech.ok());
  const auto input = MakeTrajectory({{0, 1}, {1, 3}});
  const double bound = mech->UtilityBound(2, 3.0);
  int within = 0;
  const int trials = 50;
  for (int seed = 0; seed < trials; ++seed) {
    Rng rng(seed);
    auto output = mech->Perturb(input, rng);
    ASSERT_TRUE(output.ok());
    if (mech->distance().BetweenTrajectories(input, *output) <= bound) {
      ++within;
    }
  }
  EXPECT_GE(within, trials * 9 / 10);
}

TEST_F(GlobalMechanismFixture, CreateValidatesConfig) {
  GlobalMechanism::Config config = DefaultConfig();
  config.epsilon = 0.0;
  EXPECT_FALSE(GlobalMechanism::Create(db_.get(), time_, config).ok());
  config = DefaultConfig();
  config.max_candidates = 0;
  EXPECT_FALSE(GlobalMechanism::Create(db_.get(), time_, config).ok());
}

}  // namespace
}  // namespace trajldp::core
