#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "region/decomposition.h"
#include "region/merging.h"
#include "region/region_distance.h"
#include "region/region_graph.h"
#include "region/region_index.h"
#include "test_world.h"

namespace trajldp::region {
namespace {

using trajldp::testing::GridWorldOptions;
using trajldp::testing::MakeGridWorld;

model::TimeDomain TenMinutes() {
  return *model::TimeDomain::Create(10);
}

DecompositionConfig SmallConfig(size_t kappa = 1) {
  DecompositionConfig config;
  config.grid_size = 4;
  config.coarse_grids = {2, 1};
  config.base_interval_minutes = 60;
  config.merge.kappa = kappa;
  return config;
}

// ---------- Decomposition basics ----------

TEST(DecompositionTest, ConfigValidation) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  DecompositionConfig bad = SmallConfig();
  bad.grid_size = 0;
  EXPECT_FALSE(StcDecomposition::Build(&*db, time, bad).ok());

  bad = SmallConfig();
  bad.coarse_grids = {8};  // not decreasing
  EXPECT_FALSE(StcDecomposition::Build(&*db, time, bad).ok());

  bad = SmallConfig();
  bad.base_interval_minutes = 45;  // not a multiple of g_t = 10
  EXPECT_FALSE(StcDecomposition::Build(&*db, time, bad).ok());

  bad = SmallConfig();
  bad.base_interval_minutes = 7;  // does not divide 1440
  EXPECT_FALSE(StcDecomposition::Build(&*db, time, bad).ok());
}

TEST(DecompositionTest, EveryOpenPoiTimestepHasExactlyOneRegion) {
  GridWorldOptions options;
  options.restrict_odd_hours = true;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  auto decomp = StcDecomposition::Build(&*db, time, SmallConfig());
  ASSERT_TRUE(decomp.ok());

  for (model::PoiId poi = 0; poi < db->size(); ++poi) {
    for (model::Timestep t = 0; t < time.num_timesteps(); ++t) {
      const bool open = db->poi(poi).hours.IsOpenAtMinute(
          time.TimestepToMinute(t));
      auto region = decomp->Lookup(poi, t);
      if (open) {
        ASSERT_TRUE(region.ok()) << "poi " << poi << " t " << t;
        // The region must actually contain the POI...
        const StcRegion& r = decomp->region(*region);
        EXPECT_TRUE(std::binary_search(r.pois.begin(), r.pois.end(), poi));
        // ... cover the timestep ...
        EXPECT_TRUE(r.time.Contains(time.TimestepToMinute(t)));
        // ... and carry an ancestor-or-self of the POI's category.
        EXPECT_TRUE(db->categories().IsAncestorOrSelf(
            r.category, db->poi(poi).category));
      } else {
        EXPECT_EQ(region.status().code(), StatusCode::kNotFound);
      }
    }
  }
}

TEST(DecompositionTest, NoEmptyRegions) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());
  EXPECT_GT(decomp->num_regions(), 0u);
  for (const StcRegion& r : decomp->regions()) {
    EXPECT_FALSE(r.pois.empty());
    EXPECT_GT(r.time.length(), 0);
  }
}

TEST(DecompositionTest, ToRegionTrajectoryMapsEachPoint) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  auto decomp = StcDecomposition::Build(&*db, time, SmallConfig());
  ASSERT_TRUE(decomp.ok());

  const auto traj = trajldp::testing::MakeTrajectory({{0, 60}, {5, 66}});
  auto regions = decomp->ToRegionTrajectory(traj);
  ASSERT_TRUE(regions.ok());
  ASSERT_EQ(regions->size(), 2u);
  EXPECT_EQ((*regions)[0], *decomp->Lookup(0, 60));
  EXPECT_EQ((*regions)[1], *decomp->Lookup(5, 66));
}

// ---------- Merging ----------

TEST(MergingTest, KappaMergesSparseRegions) {
  auto db = MakeGridWorld();  // 16 POIs
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  auto fine = StcDecomposition::Build(&*db, time, SmallConfig(1));
  ASSERT_TRUE(fine.ok());
  auto merged = StcDecomposition::Build(&*db, time, SmallConfig(4));
  ASSERT_TRUE(merged.ok());

  // Requiring 4 POIs per region must produce (weakly) fewer regions.
  EXPECT_LE(merged->num_regions(), fine->num_regions());
  EXPECT_GE(merged->FractionAtKappa(), fine->FractionAtKappa());
}

TEST(MergingTest, HighKappaStillCoversEveryAssignment) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  auto decomp = StcDecomposition::Build(&*db, time, SmallConfig(8));
  ASSERT_TRUE(decomp.ok());
  // All POIs are always open in this world: every (poi, t) must resolve.
  for (model::PoiId poi = 0; poi < db->size(); ++poi) {
    EXPECT_TRUE(decomp->Lookup(poi, 0).ok());
    EXPECT_TRUE(decomp->Lookup(poi, 143).ok());
  }
}

TEST(MergingTest, PopularityProtectionKeepsHotRegionsUnmerged) {
  auto db = MakeGridWorld();  // popularity = id + 1, max 16
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  DecompositionConfig config = SmallConfig(16);
  config.merge.protect_popularity = 16.0;  // protect POI 15's regions
  auto decomp = StcDecomposition::Build(&*db, time, config);
  ASSERT_TRUE(decomp.ok());

  // Every region containing POI 15 must contain nothing else that could
  // only have arrived via merging: protected regions never merge, so they
  // keep their original (cell, hour, leaf-category) membership.
  for (const StcRegion& r : decomp->regions()) {
    if (std::binary_search(r.pois.begin(), r.pois.end(),
                           model::PoiId{15})) {
      EXPECT_GE(r.max_popularity, 16.0);
      EXPECT_EQ(r.space_level, 0);
      EXPECT_EQ(r.time.length(), 60);
    }
  }
}

TEST(MergingTest, DistinctPoiCountDeduplicates) {
  ProtoRegion region;
  region.members = {{0, 0}, {0, 1}, {1, 0}};
  EXPECT_EQ(DistinctPoiCount(region), 2u);
}

TEST(MergingTest, CategoryPriorityPreservesSpace) {
  // A denser 8×8 lattice puts sibling leaf categories (adjacent columns)
  // into the same decomposition cell, giving the category merger partners.
  GridWorldOptions options;
  options.rows = 8;
  options.cols = 8;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  // Merge category first: regions should coarsen categories before
  // touching the grid.
  DecompositionConfig config = SmallConfig(4);
  config.merge.priority = {MergeDimension::kCategory,
                           MergeDimension::kTime, MergeDimension::kSpace};
  auto decomp = StcDecomposition::Build(&*db, time, config);
  ASSERT_TRUE(decomp.ok());
  // At least one region should have a non-leaf category (level < 3 for
  // food leaves) while staying at the finest grid.
  bool lifted_category_fine_space = false;
  for (const StcRegion& r : decomp->regions()) {
    if (db->categories().level(r.category) < 3 && r.space_level == 0) {
      lifted_category_fine_space = true;
      break;
    }
  }
  EXPECT_TRUE(lifted_category_fine_space);
}

// ---------- RegionDistance ----------

TEST(RegionDistanceTest, SymmetricAndZeroOnSelf) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());
  RegionDistance dist(&*decomp);
  const size_t n = std::min<size_t>(decomp->num_regions(), 40);
  for (RegionId a = 0; a < n; ++a) {
    EXPECT_DOUBLE_EQ(dist.Between(a, a), 0.0);
    for (RegionId b = 0; b < n; ++b) {
      EXPECT_DOUBLE_EQ(dist.Between(a, b), dist.Between(b, a));
      EXPECT_LE(dist.Between(a, b), dist.MaxDistance() + 1e-9);
    }
  }
}

TEST(RegionDistanceTest, CombinationMatchesEq15) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());
  RegionDistance dist(&*decomp);
  for (RegionId a = 0; a < std::min<size_t>(decomp->num_regions(), 20);
       ++a) {
    for (RegionId b = 0; b < std::min<size_t>(decomp->num_regions(), 20);
         ++b) {
      const double s = dist.SpatialKm(a, b);
      const double t = dist.TimeHours(a, b);
      const double c = dist.Category(a, b);
      EXPECT_NEAR(dist.Between(a, b), std::sqrt(s * s + t * t + c * c),
                  1e-9);
    }
  }
}

TEST(RegionDistanceTest, WeightsZeroOutDimensions) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());
  RegionDistance phys(&*decomp, RegionDistance::Weights{1.0, 0.0, 0.0});
  for (RegionId a = 0; a < std::min<size_t>(decomp->num_regions(), 20);
       ++a) {
    for (RegionId b = 0; b < std::min<size_t>(decomp->num_regions(), 20);
         ++b) {
      EXPECT_NEAR(phys.Between(a, b), phys.SpatialKm(a, b), 1e-12);
    }
  }
}

// ---------- RegionGraph ----------

TEST(RegionGraphTest, EdgesRespectTimeOrder) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  auto decomp = StcDecomposition::Build(&*db, time, SmallConfig());
  ASSERT_TRUE(decomp.ok());

  model::ReachabilityConfig reach;
  reach.speed_kmh = 8.0;
  reach.reference_gap_minutes = 30;
  const RegionGraph graph = RegionGraph::Build(*decomp, reach);

  for (RegionId a = 0; a < graph.num_regions(); ++a) {
    for (RegionId b : graph.Neighbors(a)) {
      const StcRegion& ra = decomp->region(a);
      const StcRegion& rb = decomp->region(b);
      // There must exist timesteps t_a < t_b within the two intervals.
      EXPECT_GT(rb.time.end, ra.time.begin + time.granularity_minutes());
    }
  }
}

TEST(RegionGraphTest, EdgesRespectReachability) {
  auto db = MakeGridWorld();  // 4 km wide lattice
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());

  model::ReachabilityConfig tight;
  tight.speed_kmh = 2.0;
  tight.reference_gap_minutes = 30;  // θ = 1 km
  const RegionGraph graph = RegionGraph::Build(*decomp, tight);
  const double theta = tight.ReferenceThetaKm();

  for (RegionId a = 0; a < graph.num_regions(); ++a) {
    for (RegionId b : graph.Neighbors(a)) {
      if (a == b) continue;
      // Verify at least one POI pair within θ exists.
      bool any = false;
      for (model::PoiId p : decomp->region(a).pois) {
        for (model::PoiId q : decomp->region(b).pois) {
          if (db->DistanceKm(p, q) <= theta + 1e-9) {
            any = true;
            break;
          }
        }
        if (any) break;
      }
      EXPECT_TRUE(any) << "edge " << a << "->" << b;
    }
  }
}

TEST(RegionGraphTest, UnconstrainedKeepsAllTimeCompatiblePairs) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  auto decomp = StcDecomposition::Build(&*db, time, SmallConfig());
  ASSERT_TRUE(decomp.ok());

  const RegionGraph constrained = RegionGraph::Build(
      *decomp, model::ReachabilityConfig{2.0, 30});
  const RegionGraph unconstrained = RegionGraph::Build(
      *decomp, model::ReachabilityConfig::Unconstrained());
  EXPECT_GE(unconstrained.num_edges(), constrained.num_edges());
}

TEST(RegionGraphTest, HasEdgeAgreesWithNeighbors) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());
  const RegionGraph graph = RegionGraph::Build(
      *decomp, model::ReachabilityConfig{8.0, 30});
  for (RegionId a = 0; a < std::min<size_t>(graph.num_regions(), 30); ++a) {
    std::set<RegionId> nbrs(graph.Neighbors(a).begin(),
                            graph.Neighbors(a).end());
    for (RegionId b = 0; b < std::min<size_t>(graph.num_regions(), 30);
         ++b) {
      EXPECT_EQ(graph.HasEdge(a, b), nbrs.count(b) > 0);
    }
  }
}

TEST(RegionGraphTest, CountNgramsMatchesManualCount) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());
  const RegionGraph graph = RegionGraph::Build(
      *decomp, model::ReachabilityConfig{8.0, 30});
  EXPECT_DOUBLE_EQ(graph.CountNgrams(1),
                   static_cast<double>(graph.num_regions()));
  EXPECT_DOUBLE_EQ(graph.CountNgrams(2),
                   static_cast<double>(graph.num_edges()));
  // Trigram count: sum over edges (a→b) of out-degree(b).
  double trigrams = 0.0;
  for (RegionId a = 0; a < graph.num_regions(); ++a) {
    for (RegionId b : graph.Neighbors(a)) {
      trigrams += static_cast<double>(graph.Neighbors(b).size());
    }
  }
  EXPECT_DOUBLE_EQ(graph.CountNgrams(3), trigrams);
}

// ---------- MBR candidates ----------

TEST(RegionIndexTest, MbrCandidatesIncludeObserved) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());

  const std::vector<RegionId> observed = {0, 1};
  const auto candidates = MbrCandidateRegions(*decomp, observed);
  for (RegionId id : observed) {
    EXPECT_TRUE(
        std::binary_search(candidates.begin(), candidates.end(), id));
  }
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
}

TEST(RegionIndexTest, MbrRestrictsSpatially) {
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  auto decomp = StcDecomposition::Build(&*db, TenMinutes(), SmallConfig());
  ASSERT_TRUE(decomp.ok());

  // Find a region whose POIs all sit in the lattice's bottom-left corner.
  RegionId corner = kInvalidRegion;
  for (const StcRegion& r : decomp->regions()) {
    bool all_corner = true;
    for (model::PoiId p : r.pois) {
      if (p != 0 && p != 1 && p != 4 && p != 5) all_corner = false;
    }
    if (all_corner) {
      corner = r.id;
      break;
    }
  }
  ASSERT_NE(corner, kInvalidRegion);
  const auto candidates = MbrCandidateRegions(*decomp, {corner});
  // The MBR of a corner region must exclude regions made only of the
  // far corner's POIs (e.g. POI 15 at ~4.2 km away).
  for (RegionId id : candidates) {
    const StcRegion& r = decomp->region(id);
    bool any_near = false;
    for (model::PoiId p : r.pois) {
      if (db->DistanceKm(p, 0) < 3.0) any_near = true;
    }
    EXPECT_TRUE(any_near) << "region " << id << " should be near corner";
  }
}

}  // namespace
}  // namespace trajldp::region
