#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "geo/bounding_box.h"
#include "geo/grid.h"
#include "geo/latlon.h"
#include "geo/spatial_index.h"

namespace trajldp::geo {
namespace {

// ---------- Haversine ----------

TEST(LatLonTest, HaversineKnownDistance) {
  // JFK to LAX is roughly 3974 km.
  const LatLon jfk{40.6413, -73.7781};
  const LatLon lax{33.9416, -118.4085};
  EXPECT_NEAR(HaversineKm(jfk, lax), 3974.0, 15.0);
}

TEST(LatLonTest, HaversineZeroForSamePoint) {
  const LatLon p{51.5, -0.12};
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(LatLonTest, HaversineSymmetric) {
  const LatLon a{40.7, -74.0}, b{40.8, -73.9};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
}

TEST(LatLonTest, EquirectangularCloseToHaversineAtCityScale) {
  const LatLon a{40.70, -74.00}, b{40.80, -73.90};
  const double h = HaversineKm(a, b);
  const double e = EquirectangularKm(a, b);
  EXPECT_NEAR(e / h, 1.0, 0.005);
}

TEST(LatLonTest, OffsetKmRoundTrips) {
  const LatLon origin{40.75, -73.98};
  const LatLon moved = OffsetKm(origin, 3.0, -4.0);
  EXPECT_NEAR(HaversineKm(origin, moved), 5.0, 0.02);
  const LatLon back = OffsetKm(moved, -3.0, 4.0);
  EXPECT_NEAR(HaversineKm(origin, back), 0.0, 0.02);
}

// ---------- BoundingBox ----------

TEST(BoundingBoxTest, EmptyBox) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.Contains(LatLon{0, 0}));
}

TEST(BoundingBoxTest, ExtendAndContains) {
  BoundingBox box;
  box.Extend(LatLon{40.0, -74.0});
  box.Extend(LatLon{41.0, -73.0});
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains(LatLon{40.5, -73.5}));
  EXPECT_TRUE(box.Contains(LatLon{40.0, -74.0}));  // boundary inclusive
  EXPECT_FALSE(box.Contains(LatLon{39.9, -73.5}));
}

TEST(BoundingBoxTest, DistanceZeroInside) {
  BoundingBox box(LatLon{40.0, -74.0}, LatLon{41.0, -73.0});
  EXPECT_DOUBLE_EQ(box.DistanceKm(LatLon{40.5, -73.5}), 0.0);
  EXPECT_GT(box.DistanceKm(LatLon{39.0, -73.5}), 100.0);
}

TEST(BoundingBoxTest, DistanceIsLowerBoundOnMemberDistances) {
  BoundingBox box(LatLon{40.0, -74.0}, LatLon{40.2, -73.8});
  const LatLon q{40.5, -73.5};
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const LatLon member{rng.UniformDouble(40.0, 40.2),
                        rng.UniformDouble(-74.0, -73.8)};
    EXPECT_LE(box.DistanceKm(q), HaversineKm(q, member) + 1e-9);
  }
}

TEST(BoundingBoxTest, MinMaxDistanceBracketPairDistances) {
  BoundingBox a(LatLon{40.0, -74.0}, LatLon{40.1, -73.9});
  BoundingBox b(LatLon{40.3, -73.7}, LatLon{40.4, -73.6});
  const double lo = a.MinDistanceKm(b);
  const double hi = a.MaxDistanceKm(b);
  EXPECT_LT(lo, hi);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const LatLon pa{rng.UniformDouble(40.0, 40.1),
                    rng.UniformDouble(-74.0, -73.9)};
    const LatLon pb{rng.UniformDouble(40.3, 40.4),
                    rng.UniformDouble(-73.7, -73.6)};
    const double d = HaversineKm(pa, pb);
    EXPECT_GE(d, lo - 1e-9);
    EXPECT_LE(d, hi + 1e-9);
  }
}

TEST(BoundingBoxTest, MinDistanceZeroWhenIntersecting) {
  BoundingBox a(LatLon{40.0, -74.0}, LatLon{40.2, -73.8});
  BoundingBox b(LatLon{40.1, -73.9}, LatLon{40.3, -73.7});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_DOUBLE_EQ(a.MinDistanceKm(b), 0.0);
}

TEST(BoundingBoxTest, ExpandByKmGrows) {
  BoundingBox box(LatLon{40.0, -74.0}, LatLon{40.1, -73.9});
  const LatLon outside{40.12, -73.88};
  EXPECT_FALSE(box.Contains(outside));
  box.ExpandByKm(5.0);
  EXPECT_TRUE(box.Contains(outside));
}

// ---------- UniformGrid ----------

TEST(UniformGridTest, CellAssignmentAndBounds) {
  BoundingBox extent(LatLon{40.0, -74.0}, LatLon{41.0, -73.0});
  UniformGrid grid(extent, 4, 4);
  EXPECT_EQ(grid.num_cells(), 16u);
  for (CellId c = 0; c < grid.num_cells(); ++c) {
    EXPECT_EQ(grid.CellOf(grid.CellCenter(c)), c);
  }
}

TEST(UniformGridTest, OutsidePointsClampToBoundaryCells) {
  BoundingBox extent(LatLon{40.0, -74.0}, LatLon{41.0, -73.0});
  UniformGrid grid(extent, 4, 4);
  EXPECT_EQ(grid.CellOf(LatLon{39.0, -75.0}), 0u);
  EXPECT_EQ(grid.CellOf(LatLon{42.0, -72.0}), 15u);
}

TEST(UniformGridTest, CoarsenToMapsQuadrants) {
  BoundingBox extent(LatLon{40.0, -74.0}, LatLon{41.0, -73.0});
  UniformGrid fine(extent, 4, 4);
  UniformGrid coarse(extent, 2, 2);
  // Fine cell (0,0) → coarse cell (0,0); fine (3,3) → coarse (1,1).
  EXPECT_EQ(fine.CoarsenTo(coarse, 0), 0u);
  EXPECT_EQ(fine.CoarsenTo(coarse, 15), 3u);
  // Every fine cell's center must land in the mapped coarse cell.
  for (CellId c = 0; c < fine.num_cells(); ++c) {
    EXPECT_EQ(coarse.CellOf(fine.CellCenter(c)), fine.CoarsenTo(coarse, c));
  }
}

TEST(UniformGridTest, CellsIntersectingCoversQuery) {
  BoundingBox extent(LatLon{40.0, -74.0}, LatLon{41.0, -73.0});
  UniformGrid grid(extent, 4, 4);
  BoundingBox query(LatLon{40.1, -73.9}, LatLon{40.4, -73.6});
  const auto cells = grid.CellsIntersecting(query);
  EXPECT_FALSE(cells.empty());
  for (CellId c : cells) {
    EXPECT_TRUE(grid.CellBounds(c).Intersects(query));
  }
}

// ---------- SpatialIndex ----------

class SpatialIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpatialIndexPropertyTest, RadiusQueryMatchesBruteForce) {
  Rng rng(GetParam());
  std::vector<LatLon> points;
  const LatLon center{40.75, -73.98};
  for (int i = 0; i < 500; ++i) {
    points.push_back(OffsetKm(center, rng.UniformDouble(-10, 10),
                              rng.UniformDouble(-10, 10)));
  }
  SpatialIndex index(points);
  for (int q = 0; q < 20; ++q) {
    const LatLon query = OffsetKm(center, rng.UniformDouble(-12, 12),
                                  rng.UniformDouble(-12, 12));
    const double radius = rng.UniformDouble(0.5, 8.0);
    const auto hits = index.WithinRadius(query, radius);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < points.size(); ++i) {
      if (HaversineKm(query, points[i]) <= radius) expected.push_back(i);
    }
    EXPECT_EQ(hits, expected);
    EXPECT_EQ(index.AnyWithinRadius(query, radius), !expected.empty());
  }
}

TEST_P(SpatialIndexPropertyTest, NearestMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xF00D);
  std::vector<LatLon> points;
  const LatLon center{40.75, -73.98};
  for (int i = 0; i < 300; ++i) {
    points.push_back(OffsetKm(center, rng.UniformDouble(-10, 10),
                              rng.UniformDouble(-10, 10)));
  }
  SpatialIndex index(points);
  for (int q = 0; q < 20; ++q) {
    const LatLon query = OffsetKm(center, rng.UniformDouble(-11, 11),
                                  rng.UniformDouble(-11, 11));
    const auto nearest = index.Nearest(query);
    ASSERT_TRUE(nearest.has_value());
    double best = 1e18;
    for (const auto& p : points) best = std::min(best, HaversineKm(query, p));
    EXPECT_NEAR(HaversineKm(query, points[*nearest]), best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialIndexPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(SpatialIndexTest, NearestRespectsMaxDistance) {
  std::vector<LatLon> points = {LatLon{40.0, -74.0}};
  SpatialIndex index(points);
  const LatLon far = OffsetKm(points[0], 50.0, 0.0);
  EXPECT_FALSE(index.Nearest(far, 10.0).has_value());
  EXPECT_TRUE(index.Nearest(far, 100.0).has_value());
}

TEST(SpatialIndexTest, EmptyIndex) {
  SpatialIndex index(std::vector<LatLon>{});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.Nearest(LatLon{0, 0}).has_value());
  EXPECT_TRUE(index.WithinRadius(LatLon{0, 0}, 10.0).empty());
}

}  // namespace
}  // namespace trajldp::geo
