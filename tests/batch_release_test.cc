#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "common/thread_pool.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/ngram_perturber.h"
#include "region/region_distance.h"
#include "region/region_graph.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SubmitAndWaitRunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 50);
}

// ---------- Rng substreams ----------

TEST(RngSubstreamTest, PureFunctionOfParentStateAndIndex) {
  const Rng root(42);
  Rng a = root.Substream(7);
  Rng b = root.Substream(7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngSubstreamTest, DoesNotAdvanceParent) {
  Rng root(43);
  Rng untouched(43);
  (void)root.Substream(0);
  (void)root.Substream(1);
  EXPECT_EQ(root.NextUint64(), untouched.NextUint64());
}

TEST(RngSubstreamTest, DistinctIndicesDecorrelated) {
  const Rng root(44);
  Rng a = root.Substream(0);
  Rng b = root.Substream(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngJumpTest, JumpChangesStreamDeterministically) {
  Rng a(45), b(45), c(45);
  a.Jump();
  b.Jump();
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == c.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ---------- BatchReleaseEngine ----------

class BatchReleaseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    region::DecompositionConfig config;
    config.grid_size = 2;
    config.coarse_grids = {1};
    config.base_interval_minutes = 360;
    config.merge.kappa = 1;
    auto decomp = region::StcDecomposition::Build(db_.get(), time_, config);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<region::StcDecomposition>(std::move(*decomp));

    distance_ = std::make_unique<region::RegionDistance>(decomp_.get());
    model::ReachabilityConfig reach;
    reach.speed_kmh = 8.0;
    reach.reference_gap_minutes = 60;
    graph_ = std::make_unique<region::RegionGraph>(
        region::RegionGraph::Build(*decomp_, reach));
    domain_ = std::make_unique<NgramDomain>(graph_.get(), distance_.get());
  }

  // Random multi-user workload over the full region id range.
  std::vector<region::RegionTrajectory> MakeUsers(size_t count,
                                                  uint64_t seed) const {
    const auto num_regions =
        static_cast<uint64_t>(decomp_->num_regions());
    Rng rng(seed);
    std::vector<region::RegionTrajectory> users(count);
    for (auto& tau : users) {
      const size_t len = 2 + static_cast<size_t>(rng.UniformUint64(4));
      for (size_t i = 0; i < len; ++i) {
        tau.push_back(
            static_cast<region::RegionId>(rng.UniformUint64(num_regions)));
      }
    }
    return users;
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<region::StcDecomposition> decomp_;
  std::unique_ptr<region::RegionDistance> distance_;
  std::unique_ptr<region::RegionGraph> graph_;
  std::unique_ptr<NgramDomain> domain_;
};

void ExpectIdentical(const std::vector<PerturbedNgramSet>& a,
                     const std::vector<PerturbedNgramSet>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "user " << i;
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].a, b[i][j].a) << "user " << i << " gram " << j;
      EXPECT_EQ(a[i][j].b, b[i][j].b) << "user " << i << " gram " << j;
      EXPECT_EQ(a[i][j].regions, b[i][j].regions)
          << "user " << i << " gram " << j;
    }
  }
}

TEST_F(BatchReleaseFixture, BatchMatchesSequentialForEveryThreadCount) {
  const uint64_t seed = 1234;
  for (const int n : {2, 3}) {
    NgramPerturber perturber(domain_.get(), NgramPerturber::Config{n, 5.0});
    const auto users = MakeUsers(40, 99 + static_cast<uint64_t>(n));

    // Sequential reference: the engine's documented replay recipe.
    std::vector<PerturbedNgramSet> expected;
    const Rng root(seed);
    for (size_t i = 0; i < users.size(); ++i) {
      Rng user_rng = root.Substream(i);
      auto z = perturber.Perturb(users[i], user_rng);
      ASSERT_TRUE(z.ok()) << "user " << i;
      expected.push_back(std::move(*z));
    }

    for (const size_t threads : {1u, 2u, 8u}) {
      BatchReleaseEngine engine(&perturber,
                                BatchReleaseEngine::Config{threads});
      EXPECT_EQ(engine.num_threads(), threads);
      auto batched = engine.ReleaseAll(users, seed);
      ASSERT_TRUE(batched.ok()) << "threads " << threads << " n " << n;
      ExpectIdentical(*batched, expected);
    }
  }
}

TEST_F(BatchReleaseFixture, RepeatedRunsAreIdentical) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
  const auto users = MakeUsers(16, 5);
  BatchReleaseEngine engine(&perturber, BatchReleaseEngine::Config{4});
  auto first = engine.ReleaseAll(users, 77);
  auto second = engine.ReleaseAll(users, 77);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectIdentical(*first, *second);
}

TEST_F(BatchReleaseFixture, DifferentSeedsDiffer) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
  const auto users = MakeUsers(16, 6);
  BatchReleaseEngine engine(&perturber, BatchReleaseEngine::Config{2});
  auto first = engine.ReleaseAll(users, 1);
  auto second = engine.ReleaseAll(users, 2);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  bool any_difference = false;
  for (size_t i = 0; i < users.size() && !any_difference; ++i) {
    for (size_t j = 0; j < (*first)[i].size(); ++j) {
      if ((*first)[i][j].regions != (*second)[i][j].regions) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(BatchReleaseFixture, EmptyBatchIsOk) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
  BatchReleaseEngine engine(&perturber, BatchReleaseEngine::Config{2});
  auto result = engine.ReleaseAll({}, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(BatchReleaseFixture, PerUserErrorReportsUserIndex) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
  auto users = MakeUsers(5, 7);
  users[3].clear();  // empty trajectory → InvalidArgument
  BatchReleaseEngine engine(&perturber, BatchReleaseEngine::Config{2});
  auto result = engine.ReleaseAll(users, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("user 3"), std::string::npos);
}

// ---------- End-to-end batched pipeline (ReleaseAllFull) ----------

// A 200-region world: 15 × 15 lattice POIs over the four leaf categories
// on a 5 × 5 spatial grid with two half-day intervals — every cell holds
// every category in both intervals, giving 25 × 4 × 2 = 200 STC regions.
class E2eBatchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 15;
    options.cols = 15;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    NGramConfig config;
    config.n = 2;
    config.epsilon = 5.0;
    config.decomposition.grid_size = 5;
    config.decomposition.coarse_grids = {1};
    config.decomposition.base_interval_minutes = 720;
    config.decomposition.merge.kappa = 1;
    config.reachability.speed_kmh = 30.0;
    config.reachability.reference_gap_minutes = 60;
    auto mech = NGramMechanism::Build(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok()) << mech.status();
    mech_ = std::make_unique<NGramMechanism>(std::move(*mech));
  }

  std::vector<region::RegionTrajectory> MakeUsers(size_t count,
                                                  uint64_t seed) const {
    const auto num_regions =
        static_cast<uint64_t>(mech_->decomposition().num_regions());
    Rng rng(seed);
    std::vector<region::RegionTrajectory> users(count);
    for (auto& tau : users) {
      const size_t len = 2 + static_cast<size_t>(rng.UniformUint64(4));
      for (size_t i = 0; i < len; ++i) {
        tau.push_back(
            static_cast<region::RegionId>(rng.UniformUint64(num_regions)));
      }
    }
    return users;
  }

  // The engine's documented replay recipe, run sequentially without
  // workspaces — the reference the batched output must match bit-for-bit.
  std::vector<FullRelease> SequentialReference(
      const std::vector<region::RegionTrajectory>& users,
      uint64_t seed) const {
    std::vector<FullRelease> expected;
    expected.reserve(users.size());
    const Rng root(seed);
    for (size_t i = 0; i < users.size(); ++i) {
      Rng user_rng = root.Substream(i);
      auto release = mech_->ReleaseFromRegions(users[i], user_rng);
      EXPECT_TRUE(release.ok()) << "user " << i << ": " << release.status();
      expected.push_back(std::move(*release));
    }
    return expected;
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<NGramMechanism> mech_;
};

void ExpectIdenticalReleases(const std::vector<FullRelease>& a,
                             const std::vector<FullRelease>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].regions, b[i].regions) << "user " << i;
    EXPECT_EQ(a[i].trajectory, b[i].trajectory) << "user " << i;
    EXPECT_EQ(a[i].poi_attempts, b[i].poi_attempts) << "user " << i;
    EXPECT_EQ(a[i].smoothed, b[i].smoothed) << "user " << i;
  }
}

TEST_F(E2eBatchFixture, WorldHasRoughlyTwoHundredRegions) {
  EXPECT_GE(mech_->decomposition().num_regions(), 200u);
}

TEST_F(E2eBatchFixture, ReleaseAllFullMatchesSequentialForEveryThreadCount) {
  const uint64_t seed = 20260729;
  const auto users = MakeUsers(24, 11);
  const auto expected = SequentialReference(users, seed);

  for (const size_t threads : {1u, 2u, 8u}) {
    BatchReleaseEngine engine(mech_.get(),
                              BatchReleaseEngine::Config{threads});
    EXPECT_EQ(engine.num_threads(), threads);
    auto batched = engine.ReleaseAllFull(users, seed);
    ASSERT_TRUE(batched.ok()) << "threads " << threads << ": "
                              << batched.status();
    ExpectIdenticalReleases(*batched, expected);
  }
}

TEST_F(E2eBatchFixture, GuidedPolicyMatchesGuidedSequentialEveryThreadCount) {
  // The guided policy keeps the engine's determinism contract: batched
  // output equals the sequential guided pipeline loop bit-for-bit at any
  // thread count (guided draws are a pure function of (seed, user id)
  // through the collector stream's guided substream).
  const uint64_t seed = 20260729;
  const auto users = MakeUsers(24, 11);

  const CollectorPipeline guided = mech_->pipeline(PoiPolicy::kGuided);
  std::vector<FullRelease> expected(users.size());
  PipelineWorkspace ws;
  const Rng root(seed);
  for (size_t i = 0; i < users.size(); ++i) {
    Rng user_rng = root.Substream(i);
    ASSERT_TRUE(guided.ReleaseInto(users[i], user_rng, ws, expected[i]).ok());
  }

  for (const size_t threads : {1u, 2u, 8u}) {
    BatchReleaseEngine::Config config;
    config.num_threads = threads;
    config.poi_policy = PoiPolicy::kGuided;
    BatchReleaseEngine engine(mech_.get(), config);
    auto batched = engine.ReleaseAllFull(users, seed);
    ASSERT_TRUE(batched.ok()) << "threads " << threads << ": "
                              << batched.status();
    ExpectIdenticalReleases(*batched, expected);
  }

  // And the policy must leave the perturbed regions untouched — only the
  // POI stage differs between policies.
  const auto rejection = SequentialReference(users, seed);
  for (size_t i = 0; i < users.size(); ++i) {
    EXPECT_EQ(rejection[i].regions, expected[i].regions) << "user " << i;
  }
}

TEST_F(E2eBatchFixture, CacheModeMatrixIsBitIdenticalAtEveryThreadCount) {
  // ISSUE 8 acceptance: {shared, sharded, per-thread-replica} × {1,2,8}
  // threads × {rejection, guided} all equal the sequential reference —
  // the cache arrangement may change contention and memory, never draws.
  const uint64_t seed = 20260808;
  const auto users = MakeUsers(24, 21);

  for (const PoiPolicy policy : {PoiPolicy::kRejection, PoiPolicy::kGuided}) {
    // Sequential reference under this policy.
    const CollectorPipeline pipeline = mech_->pipeline(policy);
    std::vector<FullRelease> expected(users.size());
    PipelineWorkspace ws;
    const Rng root(seed);
    for (size_t i = 0; i < users.size(); ++i) {
      Rng user_rng = root.Substream(i);
      ASSERT_TRUE(
          pipeline.ReleaseInto(users[i], user_rng, ws, expected[i]).ok());
    }

    for (const NgramDomain::CacheMode mode :
         {NgramDomain::CacheMode::kShared, NgramDomain::CacheMode::kSharded,
          NgramDomain::CacheMode::kPerThread}) {
      for (const size_t threads : {1u, 2u, 8u}) {
        BatchReleaseEngine::Config config;
        config.num_threads = threads;
        config.poi_policy = policy;
        config.cache_mode = mode;
        BatchReleaseEngine engine(mech_.get(), config);
        auto batched = engine.ReleaseAllFull(users, seed);
        ASSERT_TRUE(batched.ok())
            << "mode " << static_cast<int>(mode) << " threads " << threads
            << ": " << batched.status();
        ExpectIdenticalReleases(*batched, expected);
      }
    }
  }
  // Leave the shared mechanism's domain in its default mode for the
  // tests that run after this one.
  mech_->perturber().domain().set_cache_mode(
      NgramDomain::CacheMode::kSharded);
}

TEST_F(E2eBatchFixture, ReachabilityTableNeverChangesRejectionOutput) {
  // The table is exact-by-construction against the reachability formula,
  // so a mechanism built WITH it must release bit-identically to one
  // built without — the ISSUE 4 "legacy output unchanged" criterion,
  // end-to-end rather than per-lookup.
  NGramConfig config = mech_->config();
  config.precompute_poi_reachability = true;
  auto tabled = NGramMechanism::Build(db_.get(), time_, config);
  ASSERT_TRUE(tabled.ok()) << tabled.status();
  ASSERT_NE(tabled->reachability_table(), nullptr);
  ASSERT_EQ(mech_->reachability_table(), nullptr);

  const uint64_t seed = 20260729;
  const auto users = MakeUsers(24, 19);
  BatchReleaseEngine plain(mech_.get(), BatchReleaseEngine::Config{2});
  BatchReleaseEngine accelerated(&*tabled, BatchReleaseEngine::Config{2});
  auto a = plain.ReleaseAllFull(users, seed);
  auto b = accelerated.ReleaseAllFull(users, seed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdenticalReleases(*a, *b);
}

TEST_F(E2eBatchFixture, ReleaseAllFullRepeatedRunsReuseWorkspaces) {
  // The same engine (same worker workspaces) must be replayable: run two
  // batches back to back, then the first batch again — dirty workspaces
  // from earlier users/batches must never leak into later draws.
  const auto users = MakeUsers(12, 13);
  BatchReleaseEngine engine(mech_.get(), BatchReleaseEngine::Config{4});
  auto first = engine.ReleaseAllFull(users, 5);
  auto other = engine.ReleaseAllFull(users, 6);
  auto replay = engine.ReleaseAllFull(users, 5);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(replay.ok());
  ExpectIdenticalReleases(*first, *replay);
}

TEST_F(E2eBatchFixture, ReleaseAllFullOutputsAreValidTrajectories) {
  const auto users = MakeUsers(12, 17);
  BatchReleaseEngine engine(mech_.get(), BatchReleaseEngine::Config{2});
  auto batched = engine.ReleaseAllFull(users, 3);
  ASSERT_TRUE(batched.ok());
  for (size_t i = 0; i < users.size(); ++i) {
    const FullRelease& release = (*batched)[i];
    EXPECT_EQ(release.regions.size(), users[i].size()) << "user " << i;
    EXPECT_EQ(release.trajectory.size(), users[i].size()) << "user " << i;
    if (!release.smoothed) {
      EXPECT_TRUE(release.trajectory.Validate(time_).ok()) << "user " << i;
    }
    // Reconstructed region sequences respect the feasibility graph.
    for (size_t j = 0; j + 1 < release.regions.size(); ++j) {
      EXPECT_TRUE(mech_->graph().HasEdge(release.regions[j],
                                         release.regions[j + 1]))
          << "user " << i << " step " << j;
    }
  }
}

TEST_F(E2eBatchFixture, ReleaseAllFullPerUserErrorReportsUserIndex) {
  auto users = MakeUsers(6, 19);
  users[4].clear();  // empty trajectory → InvalidArgument
  BatchReleaseEngine engine(mech_.get(), BatchReleaseEngine::Config{2});
  auto result = engine.ReleaseAllFull(users, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("user 4"), std::string::npos);
}

TEST_F(E2eBatchFixture, ReleaseAllFullEmptyBatchIsOk) {
  BatchReleaseEngine engine(mech_.get(), BatchReleaseEngine::Config{2});
  auto result = engine.ReleaseAllFull({}, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST_F(BatchReleaseFixture, ReleaseAllFullRequiresMechanism) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
  BatchReleaseEngine engine(&perturber, BatchReleaseEngine::Config{1});
  auto result = engine.ReleaseAllFull(MakeUsers(2, 3), 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(LpBatchE2eTest, LpMechanismBatchMatchesSequential) {
  // The LP validation solver must batch deterministically too — its
  // workspace (bigram list, LP, simplex tableau) is the scratch most
  // likely to leak state between users.
  auto db = MakeGridWorld();
  ASSERT_TRUE(db.ok());
  const auto time = *model::TimeDomain::Create(10);
  NGramConfig config;
  config.n = 2;
  config.epsilon = 5.0;
  config.decomposition.grid_size = 2;
  config.decomposition.coarse_grids = {1};
  config.decomposition.base_interval_minutes = 360;
  config.decomposition.merge.kappa = 1;
  config.reachability.speed_kmh = 8.0;
  config.reachability.reference_gap_minutes = 60;
  config.use_lp_reconstruction = true;
  auto mech = NGramMechanism::Build(&*db, time, config);
  ASSERT_TRUE(mech.ok()) << mech.status();

  const auto num_regions =
      static_cast<uint64_t>(mech->decomposition().num_regions());
  Rng users_rng(23);
  std::vector<region::RegionTrajectory> users(8);
  for (auto& tau : users) {
    const size_t len = 2 + static_cast<size_t>(users_rng.UniformUint64(2));
    for (size_t i = 0; i < len; ++i) {
      tau.push_back(
          static_cast<region::RegionId>(users_rng.UniformUint64(num_regions)));
    }
  }

  const uint64_t seed = 99;
  std::vector<FullRelease> expected;
  const Rng root(seed);
  for (size_t i = 0; i < users.size(); ++i) {
    Rng user_rng = root.Substream(i);
    auto release = mech->ReleaseFromRegions(users[i], user_rng);
    ASSERT_TRUE(release.ok()) << "user " << i << ": " << release.status();
    expected.push_back(std::move(*release));
  }

  for (const size_t threads : {1u, 4u}) {
    BatchReleaseEngine engine(&*mech, BatchReleaseEngine::Config{threads});
    auto batched = engine.ReleaseAllFull(users, seed);
    ASSERT_TRUE(batched.ok()) << "threads " << threads;
    ExpectIdenticalReleases(*batched, expected);
  }
}

}  // namespace
}  // namespace trajldp::core
