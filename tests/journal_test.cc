// FrameJournal durability semantics: recovery of torn and corrupt
// tails, replay order, fsync policies. The property that matters for
// exactly-once ingest: whatever a crash leaves on disk, Open() recovers
// EXACTLY the prefix of complete records, with a clean Status.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/journal.h"

namespace trajldp::io {
namespace {

namespace fs = std::filesystem;

struct Record {
  uint64_t stream_id;
  uint64_t seq;
  std::string payload;
};

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// On-disk record size: 24-byte header + payload + 4-byte CRC.
size_t RecordBytes(const Record& record) {
  return 24 + record.payload.size() + 4;
}

std::vector<Record> ThreeRecords() {
  return {{1, 1, "frame-one-payload"},
          {1, 2, "frame-two-which-is-a-bit-longer"},
          {2, 1, "frame-three"}};
}

void WriteJournal(const std::string& path, const std::vector<Record>& records,
                  FrameJournal::Options options = {}) {
  fs::remove(path);
  auto journal = FrameJournal::Open(path, options);
  ASSERT_TRUE(journal.ok()) << journal.status();
  for (const Record& record : records) {
    ASSERT_TRUE(
        journal->Append(record.stream_id, record.seq, record.payload).ok());
  }
  ASSERT_TRUE(journal->Close().ok());
}

std::vector<Record> ReplayAll(const FrameJournal& journal) {
  std::vector<Record> out;
  EXPECT_TRUE(journal
                  .Replay([&](uint64_t stream_id, uint64_t seq,
                              std::string_view frame) {
                    out.push_back(
                        Record{stream_id, seq, std::string(frame)});
                    return Status::Ok();
                  })
                  .ok());
  return out;
}

void ExpectSameRecords(const std::vector<Record>& got,
                       const std::vector<Record>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].stream_id, want[i].stream_id) << "record " << i;
    EXPECT_EQ(got[i].seq, want[i].seq) << "record " << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << "record " << i;
  }
}

TEST(JournalTest, NewFileOpensEmpty) {
  const std::string path = TempPath("journal_new.log");
  fs::remove(path);
  auto journal = FrameJournal::Open(path, {});
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ(journal->recovery_info().records, 0u);
  EXPECT_EQ(journal->recovery_info().truncated_bytes, 0u);
  EXPECT_EQ(journal->records(), 0u);
  EXPECT_TRUE(ReplayAll(*journal).empty());
}

TEST(JournalTest, RoundTripAcrossReopen) {
  const std::string path = TempPath("journal_roundtrip.log");
  const auto records = ThreeRecords();
  WriteJournal(path, records);

  auto journal = FrameJournal::Open(path, {});
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ(journal->recovery_info().records, 3u);
  EXPECT_EQ(journal->recovery_info().truncated_bytes, 0u);
  ExpectSameRecords(ReplayAll(*journal), records);

  // The recovered journal accepts appends; a further reopen sees both.
  ASSERT_TRUE(journal->Append(3, 7, "appended-after-recovery").ok());
  ASSERT_TRUE(journal->Close().ok());
  auto reopened = FrameJournal::Open(path, {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->records(), 4u);
}

// The satellite property sweep: truncate the journal at EVERY byte
// offset of the final record (from "header missing entirely" to "one
// byte of CRC missing"). Recovery must always yield exactly the two
// complete records, with a clean Status, and leave the file ending at
// the valid prefix so later appends are well-formed.
TEST(JournalTest, TornTailRecoveryAtEveryByteOffset) {
  const std::string path = TempPath("journal_torn_master.log");
  const auto records = ThreeRecords();
  WriteJournal(path, records);
  const uint64_t full = fs::file_size(path);
  const uint64_t prefix2 = full - RecordBytes(records[2]);

  const std::string torn = TempPath("journal_torn_case.log");
  for (uint64_t cut = prefix2; cut <= full; ++cut) {
    fs::remove(torn);
    fs::copy_file(path, torn);
    fs::resize_file(torn, cut);

    auto journal = FrameJournal::Open(torn, {});
    ASSERT_TRUE(journal.ok()) << "cut at " << cut << ": "
                              << journal.status();
    const size_t expected = cut == full ? 3u : 2u;
    EXPECT_EQ(journal->recovery_info().records, expected)
        << "cut at " << cut;
    EXPECT_EQ(journal->recovery_info().valid_bytes,
              cut == full ? full : prefix2)
        << "cut at " << cut;
    EXPECT_EQ(journal->recovery_info().truncated_bytes,
              cut == full ? 0u : cut - prefix2)
        << "cut at " << cut;
    ExpectSameRecords(
        ReplayAll(*journal),
        std::vector<Record>(records.begin(), records.begin() + expected));

    // Appending over the recovered tail must produce a valid journal.
    ASSERT_TRUE(journal->Append(9, 1, "post-recovery").ok());
    ASSERT_TRUE(journal->Close().ok());
    auto reopened = FrameJournal::Open(torn, {});
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened->records(), expected + 1) << "cut at " << cut;
    EXPECT_EQ(reopened->recovery_info().truncated_bytes, 0u)
        << "cut at " << cut;
  }
}

TEST(JournalTest, CorruptTailByteDropsOnlyThatRecord) {
  const std::string path = TempPath("journal_corrupt_tail.log");
  const auto records = ThreeRecords();
  WriteJournal(path, records);
  const uint64_t full = fs::file_size(path);
  const uint64_t prefix2 = full - RecordBytes(records[2]);

  // Flip one payload byte of the final record: length intact, CRC not.
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(prefix2 + 24 + 2));
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(prefix2 + 24 + 2));
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(prefix2 + 24 + 2));
    file.put(static_cast<char>(byte ^ 0x40));
  }
  auto journal = FrameJournal::Open(path, {});
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ(journal->recovery_info().records, 2u);
  EXPECT_EQ(journal->recovery_info().truncated_bytes,
            full - prefix2);
  ExpectSameRecords(ReplayAll(*journal),
                    {records.begin(), records.begin() + 2});
}

TEST(JournalTest, MidFileCorruptionKeepsOnlyThePrecedingPrefix) {
  // Standard WAL semantics: a bad record ENDS the durable extent even
  // when later bytes happen to parse — nothing after the first bad
  // record is trusted or replayed.
  const std::string path = TempPath("journal_corrupt_mid.log");
  const auto records = ThreeRecords();
  WriteJournal(path, records);
  const uint64_t prefix1 = RecordBytes(records[0]);

  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(prefix1 + 24));  // record 1 payload
    file.put('X');
  }
  auto journal = FrameJournal::Open(path, {});
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ(journal->recovery_info().records, 1u);
  ExpectSameRecords(ReplayAll(*journal),
                    {records.begin(), records.begin() + 1});
  EXPECT_EQ(fs::file_size(path), prefix1);
}

TEST(JournalTest, SyncPoliciesAllPersist) {
  for (const auto sync : {FrameJournal::SyncPolicy::kNone,
                          FrameJournal::SyncPolicy::kEveryRecord,
                          FrameJournal::SyncPolicy::kEveryBytes,
                          FrameJournal::SyncPolicy::kTimed}) {
    const std::string path = TempPath(
        "journal_sync_" +
        std::to_string(static_cast<int>(sync)) + ".log");
    FrameJournal::Options options;
    options.sync = sync;
    options.sync_every_bytes = 64;  // trip the byte policy mid-run
    options.sync_interval = std::chrono::milliseconds(0);  // trip timed
    const auto records = ThreeRecords();
    WriteJournal(path, records, options);
    auto journal = FrameJournal::Open(path, {});
    ASSERT_TRUE(journal.ok());
    ExpectSameRecords(ReplayAll(*journal), records);
  }
}

// ---------- compaction ----------

TEST(JournalCompactTest, DropsThroughWatermarkWritesMarkerKeepsLiveSuffix) {
  const std::string path = TempPath("journal_compact_basic.log");
  fs::remove(path);
  auto journal = FrameJournal::Open(path, {});
  ASSERT_TRUE(journal.ok()) << journal.status();
  // Stream 1: seqs 1..4; stream 2: seq 1. Watermark stream 1 at 3.
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(
        journal->Append(1, seq, "s1-frame-" + std::to_string(seq)).ok());
  }
  ASSERT_TRUE(journal->Append(2, 1, "s2-frame-1").ok());

  auto info = journal->Compact({{1, 3}});
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->records_dropped, 3u);  // stream 1 seqs 1..3
  EXPECT_EQ(info->records_kept, 2u);     // stream 1 seq 4, stream 2 seq 1
  EXPECT_EQ(info->markers_written, 1u);
  EXPECT_GT(info->bytes_before, info->bytes_after);
  EXPECT_EQ(journal->compactions(), 1u);
  EXPECT_EQ(journal->valid_bytes(), info->bytes_after);

  // Replay order: markers first (empty payload, seq = watermark), then
  // the kept records in their original append order.
  const auto replayed = ReplayAll(*journal);
  ExpectSameRecords(replayed,
                    {{1, 3, ""}, {1, 4, "s1-frame-4"}, {2, 1, "s2-frame-1"}});
}

TEST(JournalCompactTest, KeepsUnsequencedRecordsAndUnnamedStreams) {
  const std::string path = TempPath("journal_compact_keep.log");
  fs::remove(path);
  auto journal = FrameJournal::Open(path, {});
  ASSERT_TRUE(journal.ok()) << journal.status();
  ASSERT_TRUE(journal->Append(1, 1, "s1-acked").ok());
  ASSERT_TRUE(journal->Append(0, 0, "raw-unsequenced").ok());
  ASSERT_TRUE(journal->Append(7, 2, "s7-no-watermark").ok());

  auto info = journal->Compact({{1, 1}});
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->records_dropped, 1u);
  // seq == 0 (never acked, replay feeds it back raw) and streams absent
  // from the watermark map must survive verbatim.
  ExpectSameRecords(ReplayAll(*journal),
                    {{1, 1, ""}, {0, 0, "raw-unsequenced"},
                     {7, 2, "s7-no-watermark"}});
}

TEST(JournalCompactTest, SurvivesReopenAndAcceptsAppends) {
  const std::string path = TempPath("journal_compact_reopen.log");
  fs::remove(path);
  {
    auto journal = FrameJournal::Open(path, {});
    ASSERT_TRUE(journal.ok()) << journal.status();
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(journal->Append(5, seq, "frame-" + std::to_string(seq)).ok());
    }
    ASSERT_TRUE(journal->Compact({{5, 2}}).ok());
    // The compacted journal is a normal journal: appends keep working.
    ASSERT_TRUE(journal->Append(5, 4, "frame-4").ok());
    ASSERT_TRUE(journal->Close().ok());
  }
  // The rename was durable: a fresh Open sees marker + live suffix +
  // post-compaction appends, with no torn tail.
  auto reopened = FrameJournal::Open(path, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->recovery_info().truncated_bytes, 0u);
  ExpectSameRecords(ReplayAll(*reopened),
                    {{5, 2, ""}, {5, 3, "frame-3"}, {5, 4, "frame-4"}});
}

TEST(JournalCompactTest, LeavesNoTempFileAndSkipsZeroWatermarks) {
  const std::string path = TempPath("journal_compact_tmp.log");
  fs::remove(path);
  auto journal = FrameJournal::Open(path, {});
  ASSERT_TRUE(journal.ok()) << journal.status();
  ASSERT_TRUE(journal->Append(1, 1, "only-frame").ok());

  auto info = journal->Compact({{1, 0}, {9, 0}});
  ASSERT_TRUE(info.ok()) << info.status();
  // A zero watermark licenses nothing: no marker, nothing dropped.
  EXPECT_EQ(info->markers_written, 0u);
  EXPECT_EQ(info->records_dropped, 0u);
  ExpectSameRecords(ReplayAll(*journal), {{1, 1, "only-frame"}});
  EXPECT_FALSE(fs::exists(path + ".compact"));
}

TEST(JournalCompactTest, DoesNotAdvanceTheFaultByteMeter) {
  // The crash harness arms fault_kill_after_bytes to die mid-APPEND;
  // compaction rewriting the whole file must not count against that
  // meter, or a compacting server would die at an uncontrolled point.
  const std::string path = TempPath("journal_compact_fault.log");
  fs::remove(path);
  FrameJournal::Options options;
  options.fault_kill_after_bytes = 1u << 20;  // far beyond these appends
  auto journal = FrameJournal::Open(path, options);
  ASSERT_TRUE(journal.ok()) << journal.status();
  for (uint64_t seq = 1; seq <= 8; ++seq) {
    ASSERT_TRUE(journal->Append(1, seq, std::string(100, 'x')).ok());
  }
  // Each compaction rewrites ~the full extent; ten of them would blow
  // well past the meter if rewrite bytes counted as appends.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(journal->Compact({}).ok());  // nothing dropped, full rewrite
  }
  ASSERT_TRUE(journal->Append(1, 9, "still-alive").ok());
  EXPECT_EQ(journal->records(), 9u);
}

TEST(JournalTest, OversizedLengthFieldTreatedAsCorruption) {
  const std::string path = TempPath("journal_hostile_len.log");
  const auto records = ThreeRecords();
  WriteJournal(path, records);
  const uint64_t prefix2 =
      fs::file_size(path) - RecordBytes(records[2]);
  {
    // Declare a ~4 GiB payload in the last record's length field: the
    // scan must reject it from the header, never sizing a buffer.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(prefix2 + 4));
    for (int i = 0; i < 4; ++i) file.put(static_cast<char>(0xFF));
  }
  auto journal = FrameJournal::Open(path, {});
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ(journal->recovery_info().records, 2u);
}

}  // namespace
}  // namespace trajldp::io
