#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "ldp/exponential_mechanism.h"
#include "ldp/permute_and_flip.h"
#include "ldp/privacy_budget.h"
#include "ldp/subsampled_em.h"

namespace trajldp::ldp {
namespace {

// ---------- PrivacyBudget ----------

TEST(PrivacyBudgetTest, CreateValidates) {
  EXPECT_TRUE(PrivacyBudget::Create(1.0).ok());
  EXPECT_FALSE(PrivacyBudget::Create(0.0).ok());
  EXPECT_FALSE(PrivacyBudget::Create(-1.0).ok());
  EXPECT_FALSE(
      PrivacyBudget::Create(std::numeric_limits<double>::infinity()).ok());
}

TEST(PrivacyBudgetTest, SpendAccumulates) {
  auto budget = PrivacyBudget::Create(1.0);
  ASSERT_TRUE(budget.ok());
  EXPECT_TRUE(budget->Spend(0.25).ok());
  EXPECT_TRUE(budget->Spend(0.25).ok());
  EXPECT_DOUBLE_EQ(budget->spent(), 0.5);
  EXPECT_DOUBLE_EQ(budget->remaining(), 0.5);
  EXPECT_EQ(budget->history().size(), 2u);
}

TEST(PrivacyBudgetTest, OverspendIsRejected) {
  auto budget = PrivacyBudget::Create(1.0);
  ASSERT_TRUE(budget.ok());
  EXPECT_TRUE(budget->Spend(0.9).ok());
  EXPECT_EQ(budget->Spend(0.2).code(), StatusCode::kResourceExhausted);
  // Failed spends do not mutate state.
  EXPECT_DOUBLE_EQ(budget->spent(), 0.9);
}

TEST(PrivacyBudgetTest, ManyEqualSharesComposeToTotal) {
  auto budget = PrivacyBudget::Create(5.0);
  ASSERT_TRUE(budget.ok());
  auto share = budget->EqualShare(7);
  ASSERT_TRUE(share.ok());
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(budget->Spend(*share).ok()) << "spend " << i;
  }
  EXPECT_NEAR(budget->spent(), 5.0, 1e-9);
  // Nothing left beyond floating-point slack.
  EXPECT_EQ(budget->Spend(0.01).code(), StatusCode::kResourceExhausted);
}

TEST(PrivacyBudgetTest, EqualShareRejectsZeroParts) {
  auto budget = PrivacyBudget::Create(1.0);
  ASSERT_TRUE(budget.ok());
  EXPECT_FALSE(budget->EqualShare(0).ok());
}

// ---------- ExponentialMechanism ----------

TEST(ExponentialMechanismTest, CreateValidates) {
  EXPECT_TRUE(ExponentialMechanism::Create(1.0, 1.0).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(0.0, 1.0).ok());
  EXPECT_FALSE(ExponentialMechanism::Create(1.0, 0.0).ok());
}

TEST(ExponentialMechanismTest, ProbabilitiesMatchDefinition) {
  auto em = ExponentialMechanism::Create(2.0, 1.0);
  ASSERT_TRUE(em.ok());
  const std::vector<double> q = {0.0, -1.0, -2.0};
  const auto probs = em->Probabilities(q);
  // p_i ∝ exp(ε q_i / 2Δ) = exp(q_i) here.
  double z = std::exp(0.0) + std::exp(-1.0) + std::exp(-2.0);
  EXPECT_NEAR(probs[0], std::exp(0.0) / z, 1e-12);
  EXPECT_NEAR(probs[1], std::exp(-1.0) / z, 1e-12);
  EXPECT_NEAR(probs[2], std::exp(-2.0) / z, 1e-12);
}

// The ε-LDP guarantee (Definition 4.2): for any two *inputs* x, x' and
// output y, the probability ratio is bounded by e^ε. With a distance
// quality q(x, y) = −d(x, y) and Δ = max distance, the exponent gap per
// output is at most ε·Δ/(2Δ)·... — verify numerically over a toy domain.
TEST(ExponentialMechanismTest, LdpRatioBoundHolds) {
  const double epsilon = 1.5;
  // Toy metric space: 5 points on a line, distance |i − j|, Δ = 4.
  const int n = 5;
  const double sensitivity = 4.0;
  auto em = ExponentialMechanism::Create(epsilon, sensitivity);
  ASSERT_TRUE(em.ok());
  std::vector<std::vector<double>> probs(n);
  for (int x = 0; x < n; ++x) {
    std::vector<double> q(n);
    for (int y = 0; y < n; ++y) q[y] = -std::abs(x - y);
    probs[x] = em->Probabilities(q);
  }
  for (int x1 = 0; x1 < n; ++x1) {
    for (int x2 = 0; x2 < n; ++x2) {
      for (int y = 0; y < n; ++y) {
        EXPECT_LE(probs[x1][y] / probs[x2][y], std::exp(epsilon) + 1e-9)
            << "x1=" << x1 << " x2=" << x2 << " y=" << y;
      }
    }
  }
}

TEST(ExponentialMechanismTest, GumbelSamplingMatchesProbabilities) {
  auto em = ExponentialMechanism::Create(2.0, 1.0);
  ASSERT_TRUE(em.ok());
  const std::vector<double> q = {0.0, -0.5, -2.0, -4.0};
  const auto expected = em->Probabilities(q);
  Rng rng(77);
  std::vector<int> counts(q.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    auto pick = em->Sample(q, rng);
    ASSERT_TRUE(pick.ok());
    ++counts[*pick];
  }
  for (size_t i = 0; i < q.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, expected[i], 0.01)
        << "output " << i;
  }
}

TEST(ExponentialMechanismTest, EmptyDomainFails) {
  auto em = ExponentialMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(em.ok());
  Rng rng(1);
  EXPECT_FALSE(em->Sample({}, rng).ok());
}

TEST(ExponentialMechanismTest, StreamingAgreesWithVector) {
  auto em = ExponentialMechanism::Create(1.0, 1.0);
  ASSERT_TRUE(em.ok());
  const std::vector<double> q = {0.0, -1.0, -3.0};
  Rng rng1(5), rng2(5);
  auto a = em->Sample(q, rng1);
  auto b = em->SampleStreaming(q.size(), [&](size_t i) { return q[i]; },
                               rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(ExponentialMechanismTest, TinyEpsilonApproachesUniform) {
  auto em = ExponentialMechanism::Create(1e-9, 1.0);
  ASSERT_TRUE(em.ok());
  const auto probs = em->Probabilities({0.0, -5.0, -10.0});
  for (double p : probs) EXPECT_NEAR(p, 1.0 / 3.0, 1e-6);
}

TEST(ExponentialMechanismTest, UtilityBoundFormula) {
  // 2Δ/ε (ln|Y| + ζ).
  EXPECT_NEAR(EmUtilityBound(2.0, 4.0, 100, 1.0),
              4.0 * (std::log(100.0) + 1.0), 1e-12);
}

// ---------- PermuteAndFlip ----------

TEST(PermuteAndFlipTest, AlwaysReturnsValidIndex) {
  auto pf = PermuteAndFlip::Create(1.0, 1.0);
  ASSERT_TRUE(pf.ok());
  Rng rng(3);
  const std::vector<double> q = {-3.0, 0.0, -1.0};
  for (int i = 0; i < 100; ++i) {
    auto pick = pf->Sample(q, rng);
    ASSERT_TRUE(pick.ok());
    EXPECT_LT(*pick, q.size());
  }
}

TEST(PermuteAndFlipTest, NeverWorseThanEmOnMaxQuality) {
  // PF stochastically dominates the EM on the quality of the output; at
  // minimum, the best candidate must be the modal output.
  auto pf = PermuteAndFlip::Create(2.0, 1.0);
  ASSERT_TRUE(pf.ok());
  Rng rng(4);
  const std::vector<double> q = {0.0, -2.0, -4.0};
  std::vector<int> counts(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    auto pick = pf->Sample(q, rng);
    ASSERT_TRUE(pick.ok());
    ++counts[*pick];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  // Compare against the EM's modal probability: PF should put at least as
  // much mass on the argmax.
  auto em = ExponentialMechanism::Create(2.0, 1.0);
  ASSERT_TRUE(em.ok());
  const auto em_probs = em->Probabilities(q);
  EXPECT_GE(static_cast<double>(counts[0]) / n, em_probs[0] - 0.01);
}

TEST(PermuteAndFlipTest, ReportsFlipCounts) {
  auto pf = PermuteAndFlip::Create(0.1, 1.0);
  ASSERT_TRUE(pf.ok());
  Rng rng(5);
  const std::vector<double> q = {0.0, -10.0, -10.0};
  size_t flips = 0;
  auto pick = pf->Sample(q, rng, &flips);
  ASSERT_TRUE(pick.ok());
  EXPECT_GE(flips, 1u);
}

TEST(PermuteAndFlipTest, EmptyDomainFails) {
  auto pf = PermuteAndFlip::Create(1.0, 1.0);
  ASSERT_TRUE(pf.ok());
  Rng rng(6);
  EXPECT_FALSE(pf->Sample({}, rng).ok());
}

// ---------- SubsampledEm ----------

TEST(SubsampledEmTest, CreateValidates) {
  EXPECT_TRUE(SubsampledEm::Create(1.0, 1.0, 10).ok());
  EXPECT_FALSE(SubsampledEm::Create(1.0, 1.0, 0).ok());
  EXPECT_FALSE(SubsampledEm::Create(0.0, 1.0, 10).ok());
}

TEST(SubsampledEmTest, SamplesValidIndices) {
  auto sem = SubsampledEm::Create(1.0, 1.0, 5);
  ASSERT_TRUE(sem.ok());
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    auto pick = sem->Sample(1000, [](size_t i) { return -double(i); }, rng);
    ASSERT_TRUE(pick.ok());
    EXPECT_LT(*pick, 1000u);
  }
}

TEST(SubsampledEmTest, SmallSampleMissesRareGoodOutputs) {
  // §5.1's argument: with a tiny sampling rate and a skewed quality
  // distribution, the one good output (index 0) is almost never found.
  auto sem = SubsampledEm::Create(5.0, 1.0, 10);
  ASSERT_TRUE(sem.ok());
  Rng rng(8);
  const size_t domain = 100000;
  int found_best = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    auto pick = sem->Sample(
        domain, [](size_t idx) { return idx == 0 ? 0.0 : -1.0; }, rng);
    ASSERT_TRUE(pick.ok());
    if (*pick == 0) ++found_best;
  }
  // Expected hit rate ≈ sample_size/domain ≈ 0.0001.
  EXPECT_LT(found_best, 3);
}

TEST(SubsampledEmTest, SampleLargerThanDomainIsFullEm) {
  auto sem = SubsampledEm::Create(5.0, 1.0, 1000);
  ASSERT_TRUE(sem.ok());
  Rng rng(9);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    auto pick =
        sem->Sample(3, [](size_t idx) { return idx == 1 ? 0.0 : -2.0; }, rng);
    ASSERT_TRUE(pick.ok());
    ++counts[*pick];
  }
  EXPECT_GT(counts[1], counts[0]);
  EXPECT_GT(counts[1], counts[2]);
}

}  // namespace
}  // namespace trajldp::ldp
