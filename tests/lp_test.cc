#include <gtest/gtest.h>

#include <cmath>

#include "lp/dense_matrix.h"
#include "lp/lp_problem.h"
#include "lp/simplex.h"

namespace trajldp::lp {
namespace {

// ---------- DenseMatrix ----------

TEST(DenseMatrixTest, BasicOps) {
  DenseMatrix m(2, 3, 1.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m(0, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 5.0);
  m.ScaleRow(0, 2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 10.0);
  m.AddRowMultiple(1, 0, -0.5);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), -4.0);
}

// ---------- LpProblem ----------

TEST(LpProblemTest, ValidateCatchesBadIndices) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.AddConstraint({{0, 1.0}, {5, 1.0}}, LpProblem::Relation::kEq, 1.0);
  EXPECT_FALSE(lp.Validate().ok());
}

TEST(LpProblemTest, ValidateCatchesObjectiveSizeMismatch) {
  LpProblem lp;
  lp.num_vars = 3;
  lp.objective = {1.0};
  EXPECT_FALSE(lp.Validate().ok());
}

// ---------- SimplexSolver ----------

// Classic textbook LP:
//   max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
//   → optimum (2, 6), objective 36. As minimisation: min −3x − 5y = −36.
TEST(SimplexTest, TextbookMaximisation) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};
  lp.AddConstraint({{0, 1.0}}, LpProblem::Relation::kLe, 4.0);
  lp.AddConstraint({{1, 2.0}}, LpProblem::Relation::kLe, 12.0);
  lp.AddConstraint({{0, 3.0}, {1, 2.0}}, LpProblem::Relation::kLe, 18.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective, -36.0, 1e-9);
  EXPECT_NEAR(solution->x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution->x[1], 6.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x − y = 1 → x = 2, y = 1, objective 4.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpProblem::Relation::kEq, 3.0);
  lp.AddConstraint({{0, 1.0}, {1, -1.0}}, LpProblem::Relation::kEq, 1.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->x[0], 2.0, 1e-9);
  EXPECT_NEAR(solution->x[1], 1.0, 1e-9);
  EXPECT_NEAR(solution->objective, 4.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 → (4, 0)? x=4,y=0: obj 8.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {2.0, 3.0};
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpProblem::Relation::kGe, 4.0);
  lp.AddConstraint({{0, 1.0}}, LpProblem::Relation::kGe, 1.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective, 8.0, 1e-9);
  EXPECT_NEAR(solution->x[0], 4.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x >= 0 with x <= -1 is infeasible.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.AddConstraint({{0, 1.0}}, LpProblem::Relation::kLe, -1.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  EXPECT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // min −x with only x >= 1: unbounded below.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.AddConstraint({{0, 1.0}}, LpProblem::Relation::kGe, 1.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  EXPECT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kOutOfRange);
}

TEST(SimplexTest, NegativeRhsIsNormalised) {
  // x − y <= −2 with min x + y → y >= x + 2, optimum (0, 2).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.AddConstraint({{0, 1.0}, {1, -1.0}}, LpProblem::Relation::kLe, -2.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective, 2.0, 1e-9);
  EXPECT_NEAR(solution->x[1], 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Redundant constraints (degenerate vertices) must not cycle.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpProblem::Relation::kLe, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpProblem::Relation::kLe, 1.0);
  lp.AddConstraint({{0, 2.0}, {1, 2.0}}, LpProblem::Relation::kLe, 2.0);
  lp.AddConstraint({{0, 1.0}}, LpProblem::Relation::kLe, 1.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective, -1.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // Same equality twice: phase 1 leaves an artificial basic at zero in a
  // redundant row; phase 2 must still solve correctly.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpProblem::Relation::kEq, 2.0);
  lp.AddConstraint({{0, 2.0}, {1, 2.0}}, LpProblem::Relation::kEq, 4.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective, 2.0, 1e-9);
}

// Shortest path as an LP: the flow polytope has integral vertices, so the
// simplex solution must be 0/1 and match the obvious shortest path.
TEST(SimplexTest, ShortestPathFlowIsIntegral) {
  // Graph: s→a (1), s→b (4), a→b (1), a→t (5), b→t (1).
  // Shortest s→t = s→a→b→t with cost 3.
  // Vars: x_sa, x_sb, x_ab, x_at, x_bt.
  LpProblem lp;
  lp.num_vars = 5;
  lp.objective = {1.0, 4.0, 1.0, 5.0, 1.0};
  // Flow out of s = 1.
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, LpProblem::Relation::kEq, 1.0);
  // Conservation at a: x_sa = x_ab + x_at.
  lp.AddConstraint({{0, 1.0}, {2, -1.0}, {3, -1.0}},
                   LpProblem::Relation::kEq, 0.0);
  // Conservation at b: x_sb + x_ab = x_bt.
  lp.AddConstraint({{1, 1.0}, {2, 1.0}, {4, -1.0}},
                   LpProblem::Relation::kEq, 0.0);

  SimplexSolver solver;
  auto solution = solver.Solve(lp);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_NEAR(solution->objective, 3.0, 1e-9);
  for (double x : solution->x) {
    EXPECT_TRUE(std::abs(x) < 1e-9 || std::abs(x - 1.0) < 1e-9)
        << "fractional flow " << x;
  }
  EXPECT_NEAR(solution->x[0], 1.0, 1e-9);  // s→a
  EXPECT_NEAR(solution->x[2], 1.0, 1e-9);  // a→b
  EXPECT_NEAR(solution->x[4], 1.0, 1e-9);  // b→t
}

TEST(SimplexTest, ReportsIterationCap) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};
  lp.AddConstraint({{0, 1.0}}, LpProblem::Relation::kLe, 4.0);
  lp.AddConstraint({{1, 2.0}}, LpProblem::Relation::kLe, 12.0);

  SimplexSolver::Options options;
  options.max_iterations = 1;
  SimplexSolver solver(options);
  auto solution = solver.Solve(lp);
  EXPECT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace trajldp::lp
