// Failure-injection and edge-case tests: how the library behaves when
// inputs are degenerate, domains are disconnected, or budgets are broken.

#include <gtest/gtest.h>

#include "baselines/independent.h"
#include "baselines/ngram_no_hierarchy.h"
#include "core/mechanism.h"
#include "eval/dataset.h"
#include "eval/experiment.h"
#include "test_world.h"

namespace trajldp {
namespace {

using trajldp::testing::GridWorldOptions;
using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

model::TimeDomain TenMinutes() { return *model::TimeDomain::Create(10); }

// ---------- Single-POI world ----------

TEST(DegenerateWorldTest, SinglePoiCityStillWorks) {
  hierarchy::CategoryTree tree = trajldp::testing::MakeSmallTree();
  model::Poi only;
  only.name = "the-only-place";
  only.location = {40.7, -74.0};
  only.category = tree.Leaves()[0];
  auto db = model::PoiDatabase::Create({only}, std::move(tree));
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  core::NGramConfig config;
  config.epsilon = 5.0;
  config.decomposition.grid_size = 1;
  config.decomposition.coarse_grids = {};
  config.decomposition.merge.kappa = 1;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  ASSERT_TRUE(mech.ok()) << mech.status();

  // A 2-point trajectory must perturb to ... the same POI at two times.
  const auto input = MakeTrajectory({{0, 10}, {0, 20}});
  Rng rng(1);
  auto out = mech->Perturb(input, rng);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->point(0).poi, 0u);
  EXPECT_EQ(out->point(1).poi, 0u);
  EXPECT_LT(out->point(0).t, out->point(1).t);
}

// ---------- Disconnected reachability ----------

TEST(DegenerateWorldTest, TwoIslandsRemainInternallyConsistent) {
  // Two clusters 100 km apart with walking-speed reachability: no
  // cross-island bigram is feasible; the mechanism must still produce
  // island-consistent outputs.
  hierarchy::CategoryTree tree = trajldp::testing::MakeSmallTree();
  const auto leaves = tree.Leaves();
  std::vector<model::Poi> pois;
  const geo::LatLon west{40.7, -74.0};
  const geo::LatLon east = geo::OffsetKm(west, 100.0, 0.0);
  for (int i = 0; i < 6; ++i) {
    model::Poi poi;
    poi.name = "w" + std::to_string(i);
    poi.location = geo::OffsetKm(west, 0.2 * i, 0.0);
    poi.category = leaves[i % leaves.size()];
    pois.push_back(poi);
  }
  for (int i = 0; i < 6; ++i) {
    model::Poi poi;
    poi.name = "e" + std::to_string(i);
    poi.location = geo::OffsetKm(east, 0.2 * i, 0.0);
    poi.category = leaves[i % leaves.size()];
    pois.push_back(poi);
  }
  auto db = model::PoiDatabase::Create(std::move(pois), std::move(tree));
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  core::NGramConfig config;
  config.epsilon = 5.0;
  config.reachability.speed_kmh = 4.0;
  config.reachability.reference_gap_minutes = 60;  // θ = 4 km
  config.decomposition.merge.kappa = 1;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  ASSERT_TRUE(mech.ok());

  const auto input = MakeTrajectory({{0, 30}, {1, 40}, {2, 50}});
  const model::Reachability checker(&*db, time, config.reachability);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    auto out = mech->Perturb(input, rng);
    ASSERT_TRUE(out.ok()) << out.status();
    // Output must never hop between islands mid-trajectory.
    EXPECT_TRUE(checker.CheckFeasible(*out).ok()) << "seed " << seed;
  }
}

// ---------- Opening-hours-driven failures ----------

TEST(DegenerateWorldTest, VisitOutsideOpeningHoursIsRejected) {
  GridWorldOptions options;
  options.restrict_odd_hours = true;  // odd POIs open 09:00–17:00
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  core::NGramConfig config;
  config.decomposition.merge.kappa = 1;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  ASSERT_TRUE(mech.ok());
  Rng rng(3);
  // POI 1 at 03:00: closed → no STC region → clean error, not a crash.
  auto out = mech->Perturb(MakeTrajectory({{1, 18}, {2, 30}}), rng);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

// ---------- Experiment driver resilience ----------

TEST(ExperimentResilienceTest, LengthFilterWithNoMatchesFailsCleanly) {
  eval::DatasetOptions options;
  options.num_pois = 150;
  options.num_trajectories = 20;
  auto dataset = eval::MakeCampusDataset(options);
  ASSERT_TRUE(dataset.ok());
  eval::ExperimentConfig config;
  config.exact_length = 99;  // no trajectory has 99 points
  auto result = eval::RunMethod(*dataset, eval::Method::kNGram, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------- Unconstrained-speed mechanisms ----------

TEST(DegenerateWorldTest, UnconstrainedSpeedWorksEndToEnd) {
  GridWorldOptions options;
  options.rows = 5;
  options.cols = 5;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  core::NGramConfig config;
  config.reachability = model::ReachabilityConfig::Unconstrained();
  config.decomposition.merge.kappa = 2;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  ASSERT_TRUE(mech.ok());
  Rng rng(5);
  auto out = mech->Perturb(MakeTrajectory({{0, 30}, {24, 31}}), rng);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Validate(time).ok());

  baselines::IndependentMechanism::Config ic;
  ic.reachability = model::ReachabilityConfig::Unconstrained();
  ic.respect_reachability = true;
  auto ind = baselines::IndependentMechanism::Build(&*db, time, ic);
  ASSERT_TRUE(ind.ok());
  Rng rng2(6);
  auto ind_out = ind->Perturb(MakeTrajectory({{0, 30}, {24, 31}}), rng2);
  ASSERT_TRUE(ind_out.ok());
  EXPECT_TRUE(ind_out->Validate(time).ok());
}

// ---------- Tiny epsilon stays functional ----------

TEST(DegenerateWorldTest, MicroscopicEpsilonStillProducesOutput) {
  GridWorldOptions options;
  options.rows = 4;
  options.cols = 4;
  auto db = MakeGridWorld(options);
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();
  core::NGramConfig config;
  config.epsilon = 1e-6;
  config.decomposition.merge.kappa = 1;
  auto mech = core::NGramMechanism::Build(&*db, time, config);
  ASSERT_TRUE(mech.ok());
  Rng rng(7);
  auto out = mech->Perturb(MakeTrajectory({{0, 30}, {1, 40}}), rng);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Validate(time).ok());
}

// ---------- Baselines on worlds with isolated POIs ----------

TEST(DegenerateWorldTest, PoiLevelNgramHandlesIsolatedPoi) {
  // One POI sits 50 km from a tight cluster: it has no graph neighbours
  // at walking θ, so POI n-grams never include it, and the mechanism
  // still succeeds for cluster trajectories.
  hierarchy::CategoryTree tree = trajldp::testing::MakeSmallTree();
  const auto leaves = tree.Leaves();
  std::vector<model::Poi> pois;
  const geo::LatLon center{40.7, -74.0};
  for (int i = 0; i < 8; ++i) {
    model::Poi poi;
    poi.name = "c" + std::to_string(i);
    poi.location = geo::OffsetKm(center, 0.3 * i, 0.0);
    poi.category = leaves[i % leaves.size()];
    pois.push_back(poi);
  }
  model::Poi hermit;
  hermit.name = "hermit";
  hermit.location = geo::OffsetKm(center, 50.0, 50.0);
  hermit.category = leaves[0];
  pois.push_back(hermit);
  auto db = model::PoiDatabase::Create(std::move(pois), std::move(tree));
  ASSERT_TRUE(db.ok());
  const auto time = TenMinutes();

  baselines::NGramNoHConfig config;
  config.reachability.speed_kmh = 4.0;
  config.reachability.reference_gap_minutes = 60;
  auto mech = baselines::BuildNGramNoH(&*db, time, config);
  ASSERT_TRUE(mech.ok());
  Rng rng(9);
  auto out = mech->Perturb(MakeTrajectory({{0, 30}, {1, 40}}), rng);
  ASSERT_TRUE(out.ok()) << out.status();
  // The hermit can never appear mid-path: it has no incident edges.
  for (const auto& pt : out->points()) {
    EXPECT_NE(pt.poi, 8u);
  }
}

}  // namespace
}  // namespace trajldp
