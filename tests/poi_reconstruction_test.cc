#include <gtest/gtest.h>

#include <algorithm>

#include "core/poi_reconstructor.h"
#include "core/time_smoother.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;

// ---------- TimeSmoother ----------

class TimeSmootherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();  // 1 km lattice
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
};

TEST_F(TimeSmootherTest, MinGapReflectsDistanceAndSpeed) {
  // 6 km/h → 1 km per 10-minute timestep.
  TimeSmoother smoother(db_.get(), time_, {6.0, 30});
  EXPECT_EQ(smoother.MinGapTimesteps(0, 1), 1);  // 1 km
  EXPECT_EQ(smoother.MinGapTimesteps(0, 3), 3);  // 3 km
  // Same POI still needs at least one timestep (times strictly increase).
  EXPECT_EQ(smoother.MinGapTimesteps(0, 0), 1);
}

TEST_F(TimeSmootherTest, UnconstrainedGapIsOne) {
  TimeSmoother smoother(db_.get(), time_,
                        model::ReachabilityConfig::Unconstrained());
  EXPECT_EQ(smoother.MinGapTimesteps(0, 15), 1);
}

TEST_F(TimeSmootherTest, AlreadyFeasibleTimesUnchanged) {
  TimeSmoother smoother(db_.get(), time_, {6.0, 30});
  auto result = smoother.Smooth({0, 1, 2}, {10, 20, 30});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<model::Timestep>{10, 20, 30}));
}

TEST_F(TimeSmootherTest, PushesLateArrivalsForward) {
  TimeSmoother smoother(db_.get(), time_, {6.0, 30});
  // 0 → 3 is 3 km: needs 3 timesteps, but input gap is 1.
  auto result = smoother.Smooth({0, 3}, {10, 11});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0], 10);
  EXPECT_EQ((*result)[1], 13);
}

TEST_F(TimeSmootherTest, PullsBackWhenDayOverflows) {
  TimeSmoother smoother(db_.get(), time_, {6.0, 30});
  // Start at the end of the day; the smoother must shift earlier points
  // back instead of running past midnight.
  auto result = smoother.Smooth({0, 1, 2}, {142, 143, 143});
  ASSERT_TRUE(result.ok());
  EXPECT_LT((*result)[0], (*result)[1]);
  EXPECT_LT((*result)[1], (*result)[2]);
  EXPECT_LE((*result)[2], 143);
  EXPECT_GE((*result)[0], 0);
}

TEST_F(TimeSmootherTest, ImpossiblePackingFails) {
  // 2 km/h: 1 km gaps need 3 timesteps each; a ~50-hop zigzag cannot fit
  // in one day. Build a long alternating sequence 0,1,0,1,... with 144
  // points: needs 143 × 3 timesteps > 143.
  TimeSmoother smoother(db_.get(), time_, {2.0, 30});
  std::vector<model::PoiId> pois;
  std::vector<model::Timestep> times;
  for (int i = 0; i < 144; ++i) {
    pois.push_back(i % 2 == 0 ? 0 : 1);
    times.push_back(i);
  }
  auto result = smoother.Smooth(pois, times);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TimeSmootherTest, RejectsMismatchedInputs) {
  TimeSmoother smoother(db_.get(), time_, {6.0, 30});
  EXPECT_FALSE(smoother.Smooth({0, 1}, {10}).ok());
  EXPECT_FALSE(smoother.Smooth({}, {}).ok());
}

// ---------- PoiReconstructor ----------

class PoiReconstructorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    region::DecompositionConfig config;
    config.grid_size = 2;
    config.coarse_grids = {1};
    config.base_interval_minutes = 60;
    config.merge.kappa = 1;
    auto decomp = region::StcDecomposition::Build(db_.get(), time_, config);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<region::StcDecomposition>(std::move(*decomp));

    reach_config_.speed_kmh = 8.0;
    reach_config_.reference_gap_minutes = 60;
    reach_ = std::make_unique<model::Reachability>(db_.get(), time_,
                                                   reach_config_);
  }

  region::RegionTrajectory RegionsOf(
      std::vector<std::pair<model::PoiId, model::Timestep>> pts) {
    region::RegionTrajectory out;
    for (const auto& [poi, t] : pts) {
      auto id = decomp_->Lookup(poi, t);
      EXPECT_TRUE(id.ok());
      out.push_back(*id);
    }
    return out;
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<region::StcDecomposition> decomp_;
  model::ReachabilityConfig reach_config_;
  std::unique_ptr<model::Reachability> reach_;
};

TEST_F(PoiReconstructorTest, ProducesFeasibleTrajectory) {
  PoiReconstructor reconstructor(decomp_.get(), reach_.get(), {});
  const auto regions = RegionsOf({{0, 60}, {1, 66}, {5, 72}});
  Rng rng(5);
  auto result = reconstructor.Reconstruct(regions, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->smoothed);
  EXPECT_EQ(result->trajectory.size(), 3u);
  EXPECT_TRUE(reach_->CheckFeasible(result->trajectory).ok());
}

TEST_F(PoiReconstructorTest, OutputPoisBelongToTheirRegions) {
  PoiReconstructor reconstructor(decomp_.get(), reach_.get(), {});
  const auto regions = RegionsOf({{0, 60}, {1, 66}, {5, 72}});
  Rng rng(6);
  auto result = reconstructor.Reconstruct(regions, rng);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < regions.size(); ++i) {
    const auto& pois = decomp_->region(regions[i]).pois;
    EXPECT_TRUE(std::binary_search(
        pois.begin(), pois.end(), result->trajectory.point(i).poi));
  }
}

TEST_F(PoiReconstructorTest, OutputTimesWithinRegionIntervalsWhenNotSmoothed) {
  PoiReconstructor reconstructor(decomp_.get(), reach_.get(), {});
  const auto regions = RegionsOf({{0, 60}, {1, 66}});
  Rng rng(7);
  auto result = reconstructor.Reconstruct(regions, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->smoothed);
  for (size_t i = 0; i < regions.size(); ++i) {
    const auto& interval = decomp_->region(regions[i]).time;
    const int minute = time_.TimestepToMinute(result->trajectory.point(i).t);
    EXPECT_TRUE(interval.Contains(minute));
  }
}

TEST_F(PoiReconstructorTest, SmoothingFallbackWhenIntervalTooTight) {
  // Seven visits inside the same one-hour region: only 6 timesteps exist,
  // so whole-trajectory sampling must fail and fall back to smoothing.
  PoiReconstructor::Config config;
  config.gamma = 200;  // keep the test fast; failure is structural
  PoiReconstructor reconstructor(decomp_.get(), reach_.get(), config);
  region::RegionTrajectory regions;
  for (int i = 0; i < 7; ++i) {
    regions.push_back(*decomp_->Lookup(0, 60));
  }
  Rng rng(8);
  auto result = reconstructor.Reconstruct(regions, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->smoothed);
  // Even smoothed outputs must be strictly increasing and within the day.
  for (size_t i = 0; i < result->trajectory.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(result->trajectory.point(i).t,
                result->trajectory.point(i - 1).t);
    }
    EXPECT_GE(result->trajectory.point(i).t, 0);
    EXPECT_LT(result->trajectory.point(i).t, time_.num_timesteps());
  }
}

TEST_F(PoiReconstructorTest, GuidedSamplerProducesFeasibleOutput) {
  PoiReconstructor::Config config;
  config.policy = PoiPolicy::kGuided;
  PoiReconstructor reconstructor(decomp_.get(), reach_.get(), config);
  const auto regions = RegionsOf({{0, 60}, {1, 66}, {5, 72}, {6, 78}});
  Rng rng(9);
  auto result = reconstructor.Reconstruct(regions, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->guided_fallback);
  EXPECT_TRUE(reach_->CheckFeasible(result->trajectory).ok());
}

TEST_F(PoiReconstructorTest, GuidedWithTableMatchesGuidedWithoutTable) {
  // The table is an exact materialisation of the reachability formula,
  // so swapping it in changes no accept/reject decision: same seeds,
  // bit-identical outputs, both policies.
  auto table = ReachabilityTable::Build(*db_, time_, reach_config_);
  ASSERT_TRUE(table.ok()) << table.status();
  const auto regions = RegionsOf({{0, 60}, {1, 66}, {5, 72}, {6, 78}});
  for (const PoiPolicy policy :
       {PoiPolicy::kRejection, PoiPolicy::kGuided}) {
    PoiReconstructor::Config config;
    config.policy = policy;
    PoiReconstructor plain(decomp_.get(), reach_.get(), config);
    PoiReconstructor tabled(decomp_.get(), reach_.get(), &*table, config);
    for (uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng1(seed), rng2(seed);
      auto a = plain.Reconstruct(regions, rng1);
      auto b = tabled.Reconstruct(regions, rng2);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_TRUE(a->trajectory == b->trajectory) << "seed " << seed;
      EXPECT_EQ(a->attempts, b->attempts) << "seed " << seed;
      EXPECT_EQ(a->smoothed, b->smoothed) << "seed " << seed;
    }
  }
}

TEST_F(PoiReconstructorTest, GuidedNeedsFewerAttemptsOnAverage) {
  const auto regions = RegionsOf({{0, 60}, {1, 66}, {5, 72}, {6, 78}});
  PoiReconstructor naive(decomp_.get(), reach_.get(), {});
  PoiReconstructor::Config guided_config;
  guided_config.policy = PoiPolicy::kGuided;
  PoiReconstructor guided(decomp_.get(), reach_.get(), guided_config);

  size_t naive_attempts = 0, guided_attempts = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng1(seed), rng2(seed);
    auto a = naive.Reconstruct(regions, rng1);
    auto b = guided.Reconstruct(regions, rng2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    naive_attempts += a->attempts;
    guided_attempts += b->attempts;
  }
  EXPECT_LE(guided_attempts, naive_attempts);
}

// ---------- Guided-policy fallback (regression) ----------

// An adversarially infeasible input: with two 12-hour base intervals, a
// region sequence visiting an afternoon region BEFORE a morning region
// admits no strictly increasing time assignment at all (the §5.6 loop
// can only ever end in the smoothing fallback, which is allowed to
// leave region intervals). The guided policy must not silently emit an
// infeasible path here: it must fall back to the legacy rejection loop
// on the untouched collector stream, making its output bit-identical to
// the rejection policy's.
class GuidedFallbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    region::DecompositionConfig config;
    config.grid_size = 2;
    config.coarse_grids = {1};
    config.base_interval_minutes = 720;
    config.merge.kappa = 1;
    auto decomp = region::StcDecomposition::Build(db_.get(), time_, config);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<region::StcDecomposition>(std::move(*decomp));

    reach_config_.speed_kmh = 8.0;
    reach_config_.reference_gap_minutes = 60;
    reach_ = std::make_unique<model::Reachability>(db_.get(), time_,
                                                   reach_config_);
    auto table = ReachabilityTable::Build(*db_, time_, reach_config_);
    ASSERT_TRUE(table.ok()) << table.status();
    table_ = std::make_unique<core::ReachabilityTable>(std::move(*table));
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<region::StcDecomposition> decomp_;
  model::ReachabilityConfig reach_config_;
  std::unique_ptr<model::Reachability> reach_;
  std::unique_ptr<core::ReachabilityTable> table_;
};

TEST_F(GuidedFallbackTest, FallsBackToRejectionLoopBitExactly) {
  PoiReconstructor::Config config;
  config.gamma = 100;  // the rejection loop is provably futile here
  PoiReconstructor::Config guided_config = config;
  guided_config.policy = PoiPolicy::kGuided;
  PoiReconstructor rejection(decomp_.get(), reach_.get(), table_.get(),
                             config);
  PoiReconstructor guided(decomp_.get(), reach_.get(), table_.get(),
                          guided_config);

  // Afternoon-interval region first, morning-interval region second:
  // t₀ ∈ [12:00, 24:00), t₁ ∈ [0:00, 12:00), t₁ > t₀ is impossible.
  region::RegionTrajectory regions{
      *decomp_->Lookup(0, time_.MinuteToTimestep(800)),
      *decomp_->Lookup(0, time_.MinuteToTimestep(60))};
  ASSERT_NE(regions[0], regions[1]);

  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng1(seed), rng2(seed);
    auto r = rejection.Reconstruct(regions, rng1);
    auto g = guided.Reconstruct(regions, rng2);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(g.ok()) << g.status();
    EXPECT_TRUE(g->guided_fallback);
    EXPECT_FALSE(r->guided_fallback);
    // The fallback replays the rejection policy on the untouched
    // collector stream: identical trajectory, identical smoothing.
    EXPECT_TRUE(g->trajectory == r->trajectory) << "seed " << seed;
    EXPECT_EQ(g->smoothed, r->smoothed) << "seed " << seed;
    EXPECT_TRUE(g->smoothed);
  }
}

TEST_F(GuidedFallbackTest, FeasibleInputNeverFallsBackEvenWhenStarved) {
  // The reverse order is feasible, and the guided proposal enforces
  // exactly the binding constraints up front — so even a single guided
  // attempt must succeed with a feasible, unsmoothed trajectory.
  PoiReconstructor::Config guided_config;
  guided_config.policy = PoiPolicy::kGuided;
  guided_config.guided_attempts = 1;
  PoiReconstructor guided(decomp_.get(), reach_.get(), table_.get(),
                          guided_config);
  region::RegionTrajectory regions{
      *decomp_->Lookup(0, time_.MinuteToTimestep(60)),
      *decomp_->Lookup(0, time_.MinuteToTimestep(800))};
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    auto g = guided.Reconstruct(regions, rng);
    ASSERT_TRUE(g.ok()) << g.status();
    EXPECT_FALSE(g->guided_fallback);
    EXPECT_FALSE(g->smoothed);
    EXPECT_TRUE(reach_->CheckFeasible(g->trajectory).ok()) << "seed "
                                                           << seed;
  }
}

TEST_F(PoiReconstructorTest, RejectsBadInputs) {
  PoiReconstructor reconstructor(decomp_.get(), reach_.get(), {});
  Rng rng(10);
  EXPECT_FALSE(reconstructor.Reconstruct({}, rng).ok());
  EXPECT_FALSE(
      reconstructor.Reconstruct({region::RegionId{999999}}, rng).ok());
}

}  // namespace
}  // namespace trajldp::core
