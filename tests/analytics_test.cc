#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "analytics/hotspot_accumulator.h"
#include "analytics/prq_sketch.h"
#include "analytics/stream_analytics.h"
#include "analytics/windowed_topk.h"
#include "common/rng.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/shard_plan.h"
#include "core/streaming_collector.h"
#include "eval/hotspots.h"
#include "eval/range_queries.h"
#include "io/wire.h"
#include "test_world.h"

namespace trajldp::analytics {
namespace {

using trajldp::testing::MakeGridWorld;
using trajldp::testing::MakeTrajectory;

class AnalyticsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);
  }

  // A deterministic random trajectory set: `count` users with 1–4
  // points each over the 16-POI lattice.
  model::TrajectorySet RandomSet(size_t count, uint64_t seed) const {
    Rng rng(seed);
    model::TrajectorySet set;
    for (size_t u = 0; u < count; ++u) {
      model::Trajectory traj;
      const size_t len = 1 + static_cast<size_t>(rng.UniformUint64(4));
      for (size_t i = 0; i < len; ++i) {
        traj.Append(static_cast<model::PoiId>(rng.UniformUint64(db_->size())),
                    static_cast<model::Timestep>(
                        rng.UniformUint64(time_.num_timesteps())));
      }
      set.push_back(std::move(traj));
    }
    return set;
  }

  // Folds `set` through K accumulators (users partitioned round-robin),
  // merges them into the first, and returns its finalized hotspots.
  std::vector<eval::Hotspot> ShardedHotspots(const model::TrajectorySet& set,
                                             const eval::HotspotSpec& spec,
                                             size_t num_shards) {
    std::vector<HotspotAccumulator> shards;
    for (size_t s = 0; s < num_shards; ++s) {
      auto acc = HotspotAccumulator::Create(db_.get(), time_, spec);
      EXPECT_TRUE(acc.ok()) << acc.status();
      shards.push_back(std::move(*acc));
    }
    for (size_t u = 0; u < set.size(); ++u) {
      shards[u % num_shards].Add(set[u]);
    }
    for (size_t s = 1; s < num_shards; ++s) {
      EXPECT_TRUE(shards[0].Merge(shards[s]).ok());
    }
    return shards[0].Finalize();
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
};

// ---------- HotspotAccumulator ----------

// The tentpole's equality gate in miniature: for randomized worlds and
// K ∈ {1, 2, 4} shard partitions, merged accumulators finalize EXACTLY
// what batch FindHotspots computes over the same users.
TEST_F(AnalyticsFixture, ShardedFoldEqualsBatchFindHotspotsOnRandomWorlds) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    const auto set = RandomSet(60, seed);
    eval::HotspotSpec spec;
    spec.eta = 3;
    for (auto entity : {eval::HotspotSpec::Entity::kPoi,
                        eval::HotspotSpec::Entity::kSpatialGrid,
                        eval::HotspotSpec::Entity::kCategoryLevel}) {
      spec.entity = entity;
      auto batch = eval::FindHotspots(*db_, time_, set, spec);
      ASSERT_TRUE(batch.ok()) << batch.status();
      for (size_t shards : {1u, 2u, 4u}) {
        EXPECT_EQ(ShardedHotspots(set, spec, shards), *batch)
            << "seed " << seed << " shards " << shards;
      }
    }
  }
}

// Edge case: a run that is still hot in the last bin of the day must
// close at end_minute == 1440, not be dropped.
TEST_F(AnalyticsFixture, RunReachingEndOfDayClosesAt1440) {
  model::TrajectorySet set;
  for (int u = 0; u < 5; ++u) {
    // Minute 1430 — the last timestep of the 10-minute domain.
    set.push_back(MakeTrajectory({{0, 143}}));
  }
  eval::HotspotSpec spec;
  spec.eta = 5;
  auto acc = HotspotAccumulator::Create(db_.get(), time_, spec);
  ASSERT_TRUE(acc.ok());
  for (const auto& traj : set) acc->Add(traj);
  const auto hotspots = acc->Finalize();
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_EQ(hotspots[0].start_minute, 1380);
  EXPECT_EQ(hotspots[0].end_minute, 1440);
  EXPECT_EQ(hotspots[0].peak_count, 5);
  // And the batch path agrees on the same edge.
  auto batch = eval::FindHotspots(*db_, time_, set, spec);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*batch, hotspots);
}

// Edge case: one whole-day bin collapses every timestep — including the
// last one — into bin 0.
TEST_F(AnalyticsFixture, WholeDayBinCollectsFirstAndLastTimestep)
{
  model::TrajectorySet set;
  for (int u = 0; u < 4; ++u) {
    set.push_back(MakeTrajectory({{0, 0}, {0, 143}}));
  }
  eval::HotspotSpec spec;
  spec.bin_minutes = model::kMinutesPerDay;
  spec.eta = 4;
  auto batch = eval::FindHotspots(*db_, time_, set, spec);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].start_minute, 0);
  EXPECT_EQ((*batch)[0].end_minute, 1440);
  // Both visits land in the single bin, so each user counts once.
  EXPECT_EQ((*batch)[0].peak_count, 4);
  EXPECT_EQ(ShardedHotspots(set, spec, 2), *batch);
}

// Edge case: bins much coarser than the time granularity (12 h bins over
// 10 min steps) — visits 500 minutes apart share a bin; visits across
// noon do not.
TEST_F(AnalyticsFixture, CoarseBinsGroupAcrossManyTimesteps) {
  model::TrajectorySet set;
  for (int u = 0; u < 3; ++u) {
    // Minutes 0 and 500 → bin 0; minute 1000 → bin 1.
    set.push_back(MakeTrajectory({{0, 0}, {0, 50}, {0, 100}}));
  }
  eval::HotspotSpec spec;
  spec.bin_minutes = 720;
  spec.eta = 3;
  auto batch = eval::FindHotspots(*db_, time_, set, spec);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 1u);  // both bins hot → one merged run
  EXPECT_EQ((*batch)[0].start_minute, 0);
  EXPECT_EQ((*batch)[0].end_minute, 1440);
  EXPECT_EQ((*batch)[0].peak_count, 3);
  EXPECT_EQ(ShardedHotspots(set, spec, 4), *batch);
}

TEST_F(AnalyticsFixture, MergeRejectsMismatchedSpecs) {
  eval::HotspotSpec a;
  eval::HotspotSpec b;
  b.bin_minutes = 720;
  auto acc_a = HotspotAccumulator::Create(db_.get(), time_, a);
  auto acc_b = HotspotAccumulator::Create(db_.get(), time_, b);
  ASSERT_TRUE(acc_a.ok());
  ASSERT_TRUE(acc_b.ok());
  EXPECT_FALSE(acc_a->Merge(*acc_b).ok());
}

TEST_F(AnalyticsFixture, CreateValidatesSpec) {
  eval::HotspotSpec spec;
  spec.bin_minutes = 7;
  EXPECT_FALSE(HotspotAccumulator::Create(db_.get(), time_, spec).ok());
  spec = eval::HotspotSpec();
  spec.eta = 0;
  EXPECT_FALSE(HotspotAccumulator::Create(db_.get(), time_, spec).ok());
}

TEST_F(AnalyticsFixture, MemoryIsBoundedByEntitiesNotUsers) {
  eval::HotspotSpec spec;
  auto acc = HotspotAccumulator::Create(db_.get(), time_, spec);
  ASSERT_TRUE(acc.ok());
  const auto one_traj = MakeTrajectory({{0, 10}, {1, 20}});
  acc->Add(one_traj);
  const size_t after_one = acc->ApproxMemoryBytes();
  for (int u = 0; u < 10000; ++u) acc->Add(one_traj);
  // 10000 more users over the same entities: the table must not grow.
  EXPECT_EQ(acc->ApproxMemoryBytes(), after_one);
  EXPECT_EQ(acc->users_added(), 10001u);
}

// ---------- PrqSketch ----------

TEST_F(AnalyticsFixture, ShardedSketchEqualsBatchPrqCurve) {
  const std::vector<double> deltas = {0.0, 0.5, 1.0, 2.0, 4.0, 1e9};
  for (uint64_t seed : {2u, 9u}) {
    // Paired sets with MIXED lengths so the length-bucketed accumulation
    // is actually exercised.
    Rng rng(seed);
    model::TrajectorySet real, released;
    for (int k = 0; k < 30; ++k) {
      model::Trajectory a, b;
      const size_t len = 1 + static_cast<size_t>(rng.UniformUint64(5));
      for (size_t i = 0; i < len; ++i) {
        const auto t = static_cast<model::Timestep>(
            rng.UniformUint64(time_.num_timesteps()));
        a.Append(static_cast<model::PoiId>(rng.UniformUint64(db_->size())),
                 t);
        b.Append(static_cast<model::PoiId>(rng.UniformUint64(db_->size())),
                 t);
      }
      real.push_back(std::move(a));
      released.push_back(std::move(b));
    }
    for (auto dim : {eval::PrqDimension::kSpace, eval::PrqDimension::kTime,
                     eval::PrqDimension::kCategory}) {
      auto batch = eval::PrqCurve(*db_, time_, real, released, dim, deltas);
      ASSERT_TRUE(batch.ok()) << batch.status();
      for (size_t num_shards : {1u, 2u, 4u}) {
        std::vector<PrqSketch> shards;
        for (size_t s = 0; s < num_shards; ++s) {
          shards.emplace_back(db_.get(), time_, dim, deltas);
        }
        for (size_t k = 0; k < real.size(); ++k) {
          ASSERT_TRUE(
              shards[k % num_shards].AddPair(real[k], released[k]).ok());
        }
        for (size_t s = 1; s < num_shards; ++s) {
          ASSERT_TRUE(shards[0].Merge(shards[s]).ok());
        }
        auto curve = shards[0].Curve();
        ASSERT_TRUE(curve.ok()) << curve.status();
        ASSERT_EQ(curve->size(), batch->size());
        for (size_t j = 0; j < curve->size(); ++j) {
          // Bitwise equality, not approximate: the whole point of the
          // integer length-bucketed accumulation.
          EXPECT_DOUBLE_EQ((*curve)[j], (*batch)[j])
              << "seed " << seed << " shards " << num_shards << " j " << j;
        }
      }
    }
  }
}

TEST_F(AnalyticsFixture, SketchRejectsBadPairsAndEmptyFinalize) {
  PrqSketch sketch(db_.get(), time_, eval::PrqDimension::kSpace, {1.0});
  EXPECT_FALSE(sketch.Curve().ok());  // nothing folded
  EXPECT_FALSE(
      sketch.AddPair(MakeTrajectory({{0, 1}}), MakeTrajectory({})).ok());
  EXPECT_FALSE(sketch.AddPair(MakeTrajectory({}), MakeTrajectory({})).ok());
  EXPECT_EQ(sketch.users_added(), 0u);
}

TEST_F(AnalyticsFixture, SketchRejectsMismatchedMerge) {
  PrqSketch space(db_.get(), time_, eval::PrqDimension::kSpace, {1.0});
  PrqSketch time_dim(db_.get(), time_, eval::PrqDimension::kTime, {1.0});
  PrqSketch other_grid(db_.get(), time_, eval::PrqDimension::kSpace, {2.0});
  EXPECT_FALSE(space.Merge(time_dim).ok());
  EXPECT_FALSE(space.Merge(other_grid).ok());
}

// ---------- WindowedTopK ----------

TEST_F(AnalyticsFixture, TopKRanksByCountThenEntity) {
  TopKSpec spec;
  spec.window_minutes = 720;
  spec.k = 2;
  auto topk = WindowedTopK::Create(db_.get(), time_, spec);
  ASSERT_TRUE(topk.ok()) << topk.status();
  // Morning window: POI 3 gets 3 visitors, POIs 1 and 2 get 2 each (the
  // tie breaks toward the smaller id), POI 0 gets 1 and must be cut by
  // k = 2. Afternoon window: nobody.
  for (int u = 0; u < 3; ++u) topk->Add(MakeTrajectory({{3, 10}}));
  for (int u = 0; u < 2; ++u) topk->Add(MakeTrajectory({{2, 10}}));
  for (int u = 0; u < 2; ++u) topk->Add(MakeTrajectory({{1, 10}}));
  topk->Add(MakeTrajectory({{0, 10}}));
  const auto windows = topk->Finalize();
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(windows[0].size(), 2u);
  EXPECT_EQ(windows[0][0], (WindowTopEntry{3, 3}));
  EXPECT_EQ(windows[0][1], (WindowTopEntry{1, 2}));
  EXPECT_TRUE(windows[1].empty());
}

TEST_F(AnalyticsFixture, TopKShardMergeEqualsSingleFold) {
  TopKSpec spec;
  spec.window_minutes = 360;
  spec.k = 5;
  const auto set = RandomSet(50, 31);
  auto single = WindowedTopK::Create(db_.get(), time_, spec);
  ASSERT_TRUE(single.ok());
  for (const auto& traj : set) single->Add(traj);

  auto a = WindowedTopK::Create(db_.get(), time_, spec);
  auto b = WindowedTopK::Create(db_.get(), time_, spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t u = 0; u < set.size(); ++u) {
    (u % 2 ? *a : *b).Add(set[u]);
  }
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_EQ(a->Finalize(), single->Finalize());
  EXPECT_EQ(a->users_added(), set.size());
}

TEST_F(AnalyticsFixture, TopKCreateValidates) {
  TopKSpec spec;
  spec.window_minutes = 7;
  EXPECT_FALSE(WindowedTopK::Create(db_.get(), time_, spec).ok());
  spec = TopKSpec();
  spec.k = 0;
  EXPECT_FALSE(WindowedTopK::Create(db_.get(), time_, spec).ok());
}

// ---------- StreamAnalytics ----------

TEST_F(AnalyticsFixture, StreamAnalyticsCreateValidatesConfig) {
  StreamAnalyticsConfig empty;
  EXPECT_FALSE(StreamAnalytics::Create(db_.get(), time_, empty).ok());

  StreamAnalyticsConfig no_lookup;
  no_lookup.prq.push_back({eval::PrqDimension::kSpace, {1.0}});
  EXPECT_FALSE(StreamAnalytics::Create(db_.get(), time_, no_lookup).ok());

  StreamAnalyticsConfig empty_grid;
  empty_grid.prq.push_back({eval::PrqDimension::kSpace, {}});
  empty_grid.real_lookup = [](uint64_t) { return nullptr; };
  EXPECT_FALSE(StreamAnalytics::Create(db_.get(), time_, empty_grid).ok());

  StreamAnalyticsConfig bad_spec;
  bad_spec.hotspots.emplace();
  bad_spec.hotspots->eta = 0;
  EXPECT_FALSE(StreamAnalytics::Create(db_.get(), time_, bad_spec).ok());
}

TEST_F(AnalyticsFixture, StreamAnalyticsLatchesLookupMissButKeepsCounting) {
  StreamAnalyticsConfig config;
  config.hotspots.emplace();
  config.hotspots->eta = 1;
  config.prq.push_back({eval::PrqDimension::kSpace, {1.0}});
  const model::Trajectory real = MakeTrajectory({{0, 10}});
  config.real_lookup = [&real](uint64_t id) {
    return id == 0 ? &real : nullptr;
  };
  auto bundle = StreamAnalytics::Create(db_.get(), time_, config);
  ASSERT_TRUE(bundle.ok()) << bundle.status();

  core::UserRelease ok_release;
  ok_release.user_id = 0;
  ok_release.release.trajectory = MakeTrajectory({{0, 10}});
  bundle->Consume(ok_release);
  EXPECT_TRUE(bundle->status().ok());

  core::UserRelease unknown;
  unknown.user_id = 99;
  unknown.release.trajectory = MakeTrajectory({{1, 20}});
  bundle->Consume(unknown);
  EXPECT_FALSE(bundle->status().ok());
  // Hotspot counting kept going for the unknown user; only PRQ skipped.
  EXPECT_EQ(bundle->releases_consumed(), 2u);
  EXPECT_EQ(bundle->hotspots()->users_added(), 2u);
  EXPECT_EQ(bundle->prq()[0].users_added(), 1u);
}

// ---------- Live fan-out over a real StreamingCollector ----------

// The tentpole end-to-end, sized for the TSan suite: K sharded
// collectors each fan out to (materialize sink, analytics bundle) on
// racing workers; merged bundles finalize EXACTLY the batch eval of the
// merged materialized releases.
class StreamingAnalyticsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 15;
    options.cols = 15;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    core::NGramConfig config;
    config.n = 2;
    config.epsilon = 5.0;
    config.decomposition.grid_size = 5;
    config.decomposition.coarse_grids = {1};
    config.decomposition.base_interval_minutes = 720;
    config.decomposition.merge.kappa = 1;
    config.reachability.speed_kmh = 30.0;
    config.reachability.reference_gap_minutes = 60;
    auto mech = core::NGramMechanism::Build(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok()) << mech.status();
    mech_ = std::make_unique<core::NGramMechanism>(std::move(*mech));
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<core::NGramMechanism> mech_;
};

TEST_F(StreamingAnalyticsFixture, ShardedLiveAnalyticsEqualBatchEval) {
  const uint64_t seed = 20260808;
  const size_t num_users = 30;

  // Device side: random region trajectories → wire reports.
  const auto num_regions =
      static_cast<uint64_t>(mech_->decomposition().num_regions());
  Rng rng(5);
  std::vector<region::RegionTrajectory> users(num_users);
  for (auto& tau : users) {
    const size_t len = 2 + static_cast<size_t>(rng.UniformUint64(4));
    for (size_t i = 0; i < len; ++i) {
      tau.push_back(
          static_cast<region::RegionId>(rng.UniformUint64(num_regions)));
    }
  }
  core::BatchReleaseEngine device(&mech_->perturber(),
                                  core::BatchReleaseEngine::Config{2});
  auto perturbed = device.ReleaseAll(users, seed);
  ASSERT_TRUE(perturbed.ok()) << perturbed.status();
  const auto reports =
      core::MakeWireReports(users, std::move(*perturbed), mech_->perturber());

  // Synthetic "real" POI trajectories, one per user, same lengths as
  // the released ones — what PRQ pairs against.
  std::map<uint64_t, model::Trajectory> real_by_user;
  for (size_t u = 0; u < num_users; ++u) {
    model::Trajectory traj;
    for (size_t i = 0; i < users[u].size(); ++i) {
      traj.Append(static_cast<model::PoiId>((u * 7 + i * 3) % db_->size()),
                  static_cast<model::Timestep>((u + i * 11) %
                                               time_.num_timesteps()));
    }
    real_by_user.emplace(u, std::move(traj));
  }

  StreamAnalyticsConfig config;
  config.hotspots.emplace();
  config.hotspots->eta = 2;
  config.prq.push_back(
      {eval::PrqDimension::kSpace, {0.0, 1.0, 4.0, 16.0, 1e9}});
  config.top_k.emplace();
  config.top_k->k = 5;
  config.real_lookup = [&real_by_user](uint64_t id) {
    auto it = real_by_user.find(id);
    return it == real_by_user.end() ? nullptr : &it->second;
  };

  for (const size_t num_shards : {1u, 2u, 4u}) {
    const core::ShardPlan plan{num_shards};
    auto sharded = core::PartitionByShard(plan, io::ReportBatch(reports));
    std::vector<std::vector<core::UserRelease>> outputs(sharded.size());
    std::vector<StreamAnalytics> bundles;
    for (size_t s = 0; s < sharded.size(); ++s) {
      auto bundle = StreamAnalytics::Create(db_.get(), time_, config);
      ASSERT_TRUE(bundle.ok()) << bundle.status();
      bundles.push_back(std::move(*bundle));
    }
    for (size_t s = 0; s < sharded.size(); ++s) {
      core::StreamingCollector::Config cc;
      cc.num_threads = 4;
      cc.queue_capacity = 2;
      StreamAnalytics& bundle = bundles[s];
      auto& out = outputs[s];
      core::StreamingCollector collector(
          mech_.get(), seed,
          core::StreamingCollector::FanOutSink(
              {[&bundle](core::UserRelease release) {
                 bundle.Consume(release);
               },
               [&out](core::UserRelease release) {
                 out.push_back(std::move(release));
               }}),
          cc);
      for (size_t begin = 0; begin < sharded[s].size(); begin += 3) {
        const size_t end = std::min(begin + 3, sharded[s].size());
        ASSERT_TRUE(collector
                        .Push(io::ReportBatch(sharded[s].begin() + begin,
                                              sharded[s].begin() + end))
                        .ok());
      }
      ASSERT_TRUE(collector.Finish().ok());
      ASSERT_TRUE(bundle.status().ok()) << bundle.status();
    }

    // Merge shard bundles into bundles[0].
    for (size_t s = 1; s < bundles.size(); ++s) {
      ASSERT_TRUE(bundles[0].Merge(bundles[s]).ok());
    }
    EXPECT_EQ(bundles[0].releases_consumed(), num_users);

    // Batch reference over the merged materialized releases.
    auto merged = core::MergeShardReleases(std::move(outputs), num_users);
    ASSERT_TRUE(merged.ok()) << merged.status();
    model::TrajectorySet released_set, real_set;
    for (size_t u = 0; u < num_users; ++u) {
      released_set.push_back((*merged)[u].trajectory);
      real_set.push_back(real_by_user.at(u));
    }
    auto batch_hotspots =
        eval::FindHotspots(*db_, time_, released_set, *config.hotspots);
    ASSERT_TRUE(batch_hotspots.ok()) << batch_hotspots.status();
    EXPECT_EQ(bundles[0].hotspots()->Finalize(), *batch_hotspots)
        << "shards " << num_shards;

    auto batch_curve =
        eval::PrqCurve(*db_, time_, real_set, released_set,
                       config.prq[0].dimension, config.prq[0].deltas);
    ASSERT_TRUE(batch_curve.ok()) << batch_curve.status();
    auto stream_curve = bundles[0].prq()[0].Curve();
    ASSERT_TRUE(stream_curve.ok()) << stream_curve.status();
    ASSERT_EQ(stream_curve->size(), batch_curve->size());
    for (size_t j = 0; j < stream_curve->size(); ++j) {
      EXPECT_DOUBLE_EQ((*stream_curve)[j], (*batch_curve)[j])
          << "shards " << num_shards << " j " << j;
    }

    // Top-k over the same releases, computed independently.
    auto reference_topk =
        WindowedTopK::Create(db_.get(), time_, *config.top_k);
    ASSERT_TRUE(reference_topk.ok());
    for (const auto& traj : released_set) reference_topk->Add(traj);
    EXPECT_EQ(bundles[0].top_k()->Finalize(), reference_topk->Finalize())
        << "shards " << num_shards;
  }
}

}  // namespace
}  // namespace trajldp::analytics
