#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/ngram.h"
#include "core/ngram_domain.h"
#include "core/ngram_perturber.h"
#include "ldp/privacy_budget.h"
#include "region/region_distance.h"
#include "region/region_graph.h"
#include "test_world.h"

namespace trajldp::core {
namespace {

using trajldp::testing::MakeGridWorld;

// Shared fixture: a small decomposition + graph + distance + domain.
class NgramFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = MakeGridWorld();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    region::DecompositionConfig config;
    config.grid_size = 2;
    config.coarse_grids = {1};
    config.base_interval_minutes = 360;  // 4 coarse intervals per day
    config.merge.kappa = 1;              // no merging
    auto decomp = region::StcDecomposition::Build(db_.get(), time_, config);
    ASSERT_TRUE(decomp.ok());
    decomp_ = std::make_unique<region::StcDecomposition>(std::move(*decomp));

    distance_ = std::make_unique<region::RegionDistance>(decomp_.get());
    model::ReachabilityConfig reach;
    reach.speed_kmh = 8.0;
    reach.reference_gap_minutes = 60;
    graph_ = std::make_unique<region::RegionGraph>(
        region::RegionGraph::Build(*decomp_, reach));
    domain_ = std::make_unique<NgramDomain>(graph_.get(), distance_.get());
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<region::StcDecomposition> decomp_;
  std::unique_ptr<region::RegionDistance> distance_;
  std::unique_ptr<region::RegionGraph> graph_;
  std::unique_ptr<NgramDomain> domain_;
};

// ---------- PerturbedNgram ----------

TEST(PerturbedNgramTest, CoverageAndAccess) {
  PerturbedNgram gram{2, 4, {10, 11, 12}};
  EXPECT_EQ(gram.length(), 3u);
  EXPECT_FALSE(gram.Covers(1));
  EXPECT_TRUE(gram.Covers(2));
  EXPECT_TRUE(gram.Covers(4));
  EXPECT_FALSE(gram.Covers(5));
  EXPECT_EQ(gram.RegionAt(2), 10u);
  EXPECT_EQ(gram.RegionAt(4), 12u);
}

TEST(PerturbedNgramTest, CoverageCount) {
  PerturbedNgramSet z = {{1, 2, {0, 0}}, {2, 3, {0, 0}}, {1, 1, {0}}};
  EXPECT_EQ(CoverageCount(z, 1), 2u);
  EXPECT_EQ(CoverageCount(z, 2), 2u);
  EXPECT_EQ(CoverageCount(z, 3), 1u);
}

// ---------- SamplePathEm ----------

TEST_F(NgramFixture, SamplePathEmRespectsAdjacency) {
  Rng rng(31);
  const size_t n = graph_->num_regions();
  std::vector<std::vector<double>> weights(
      3, std::vector<double>(n, 1.0));
  for (int trial = 0; trial < 200; ++trial) {
    auto path = SamplePathEm(
        n, [&](uint32_t v) { return graph_->Neighbors(v); }, weights, rng);
    ASSERT_TRUE(path.ok());
    ASSERT_EQ(path->size(), 3u);
    EXPECT_TRUE(graph_->HasEdge((*path)[0], (*path)[1]));
    EXPECT_TRUE(graph_->HasEdge((*path)[1], (*path)[2]));
  }
}

TEST_F(NgramFixture, SamplePathEmDeterministicPerSeed) {
  const size_t n = graph_->num_regions();
  std::vector<std::vector<double>> weights(2, std::vector<double>(n, 1.0));
  Rng rng1(7), rng2(7);
  auto a = SamplePathEm(
      n, [&](uint32_t v) { return graph_->Neighbors(v); }, weights, rng1);
  auto b = SamplePathEm(
      n, [&](uint32_t v) { return graph_->Neighbors(v); }, weights, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SamplePathEmTest, FailsOnEmptyGraph) {
  Rng rng(1);
  std::vector<std::vector<double>> weights(1);
  auto result = SamplePathEm(
      0, [](uint32_t) { return std::span<const uint32_t>(); }, weights, rng);
  EXPECT_FALSE(result.ok());
}

TEST(SamplePathEmTest, FailsWhenNoWalkExists) {
  // Two nodes, no edges: no bigram exists.
  Rng rng(2);
  std::vector<std::vector<double>> weights(2, std::vector<double>(2, 1.0));
  auto result = SamplePathEm(
      2, [](uint32_t) { return std::span<const uint32_t>(); }, weights, rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// The factored sampler must reproduce the exact EM distribution over W₂
// (eq. 6). Enumerate W₂ explicitly, compute the EM probabilities, and
// compare with the empirical distribution via total-variation distance.
TEST_F(NgramFixture, SamplerMatchesExplicitEmOverW2) {
  const double epsilon = 2.0;
  // Input bigram: the regions of POI 0 at 09:00 and POI 1 at 10:00.
  const region::RegionId in0 = *decomp_->Lookup(0, 54);
  const region::RegionId in1 = *decomp_->Lookup(1, 60);

  const auto d0 = distance_->ToAll(in0);
  const auto d1 = distance_->ToAll(in1);
  const double delta = domain_->Sensitivity(2);

  // Explicit EM over all feasible bigrams.
  std::map<std::pair<region::RegionId, region::RegionId>, double> probs;
  double z_norm = 0.0;
  for (region::RegionId a = 0; a < graph_->num_regions(); ++a) {
    for (region::RegionId b : graph_->Neighbors(a)) {
      const double w =
          std::exp(-epsilon * (d0[a] + d1[b]) / (2.0 * delta));
      probs[{a, b}] = w;
      z_norm += w;
    }
  }
  for (auto& [key, p] : probs) p /= z_norm;

  // Empirical distribution from the factored sampler.
  Rng rng(99);
  std::map<std::pair<region::RegionId, region::RegionId>, double> empirical;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    auto sample = domain_->Sample({in0, in1}, epsilon, rng);
    ASSERT_TRUE(sample.ok());
    empirical[{(*sample)[0], (*sample)[1]}] += 1.0 / trials;
  }

  double tv = 0.0;
  for (const auto& [key, p] : probs) {
    const auto it = empirical.find(key);
    tv += std::abs(p - (it == empirical.end() ? 0.0 : it->second));
  }
  // Expected sampling noise at this trial count is ~0.02; anything much
  // larger indicates a distributional bug, not noise.
  EXPECT_LT(tv / 2.0, 0.035);
}

// ---------- Weight-row cache ----------

// The cache is a pure memoisation: with the same seed, cached and
// uncached sampling must produce the exact same draw sequence, across
// n-gram lengths and ε′ values.
TEST_F(NgramFixture, CachedAndUncachedDrawsIdentical) {
  NgramDomain uncached(graph_.get(), distance_.get());
  uncached.set_cache_enabled(false);
  ASSERT_TRUE(domain_->cache_enabled());
  ASSERT_FALSE(uncached.cache_enabled());

  const region::RegionId r0 = *decomp_->Lookup(0, 54);
  const region::RegionId r1 = *decomp_->Lookup(1, 60);
  const region::RegionId r2 = *decomp_->Lookup(2, 66);
  const std::vector<std::vector<region::RegionId>> inputs = {
      {r0}, {r0, r1}, {r1, r0}, {r0, r1, r2}};

  Rng rng_cached(123), rng_uncached(123);
  for (const double epsilon : {0.3, 1.0, 4.0}) {
    for (const auto& input : inputs) {
      for (int trial = 0; trial < 20; ++trial) {
        auto a = domain_->Sample(input, epsilon, rng_cached);
        auto b = uncached.Sample(input, epsilon, rng_uncached);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(*a, *b) << "epsilon " << epsilon;
      }
    }
  }
  // The cached domain actually hit its cache; the uncached one stayed
  // empty.
  EXPECT_GT(domain_->cache_stats().weight_hits, 0u);
  EXPECT_EQ(uncached.cache_stats().weight_rows, 0u);
  EXPECT_EQ(uncached.cache_stats().weight_hits, 0u);
}

TEST_F(NgramFixture, CacheRespectsDistinctEpsilonKeys) {
  NgramDomain domain(graph_.get(), distance_.get());
  const region::RegionId r0 = *decomp_->Lookup(0, 54);
  const region::RegionId r1 = *decomp_->Lookup(1, 60);
  ASSERT_NE(r0, r1);  // the row-count expectations below assume this

  Rng rng(11);
  ASSERT_TRUE(domain.Sample({r0, r1}, 1.0, rng).ok());
  const auto first = domain.cache_stats();
  // One weight row per distinct true region, one suffix row for the last
  // slot's region.
  EXPECT_EQ(first.weight_rows, 2u);
  EXPECT_EQ(first.suffix_rows, 1u);
  EXPECT_EQ(first.weight_misses, 2u);

  // Same ε′ again: pure hits, no new rows.
  ASSERT_TRUE(domain.Sample({r0, r1}, 1.0, rng).ok());
  const auto second = domain.cache_stats();
  EXPECT_EQ(second.weight_rows, 2u);
  EXPECT_EQ(second.suffix_rows, 1u);
  EXPECT_EQ(second.weight_misses, 2u);
  EXPECT_GE(second.weight_hits, first.weight_hits + 2);

  // Different ε′: same regions, but distinct cache keys → new rows.
  ASSERT_TRUE(domain.Sample({r0, r1}, 2.0, rng).ok());
  const auto third = domain.cache_stats();
  EXPECT_EQ(third.weight_rows, 4u);
  EXPECT_EQ(third.suffix_rows, 2u);
  EXPECT_EQ(third.weight_misses, 4u);

  domain.ClearCache();
  const auto cleared = domain.cache_stats();
  EXPECT_EQ(cleared.weight_rows, 0u);
  EXPECT_EQ(cleared.suffix_rows, 0u);
}

// The ROADMAP "cache eviction policy" item: when every user brings their
// own ε (so every distinct ε′ mints new cache keys), a capped domain
// must stay bounded — and capping, like disabling, must never change a
// draw.
TEST_F(NgramFixture, LruCapKeepsPerUserEpsilonWorkloadBounded) {
  constexpr size_t kCapacity = 6;
  NgramDomain capped(graph_.get(), distance_.get());
  // The exact global cap only holds in the single-stripe mode; kSharded
  // splits the budget per stripe (bound max(capacity, kCacheStripes),
  // covered in cache_modes_test.cc).
  capped.set_cache_mode(NgramDomain::CacheMode::kShared);
  capped.set_cache_capacity(kCapacity);
  EXPECT_EQ(capped.cache_capacity(), kCapacity);
  NgramDomain unbounded(graph_.get(), distance_.get());

  const region::RegionId r0 = *decomp_->Lookup(0, 54);
  const region::RegionId r1 = *decomp_->Lookup(1, 60);

  // 40 users, each with their own ε → 40 distinct (region, scale) keys
  // per slot region. The capped domain must not grow past the cap while
  // drawing exactly what the unbounded domain draws.
  Rng rng_capped(2026), rng_unbounded(2026);
  for (int user = 0; user < 40; ++user) {
    const double epsilon = 0.2 + 0.1 * user;  // per-user budget
    auto a = capped.Sample({r0, r1}, epsilon, rng_capped);
    auto b = unbounded.Sample({r0, r1}, epsilon, rng_unbounded);
    ASSERT_TRUE(a.ok()) << "user " << user;
    ASSERT_TRUE(b.ok()) << "user " << user;
    EXPECT_EQ(*a, *b) << "user " << user;

    const auto stats = capped.cache_stats();
    EXPECT_LE(stats.weight_rows, kCapacity) << "user " << user;
    EXPECT_LE(stats.suffix_rows, kCapacity) << "user " << user;
  }

  const auto capped_stats = capped.cache_stats();
  const auto unbounded_stats = unbounded.cache_stats();
  EXPECT_GT(capped_stats.weight_evictions, 0u);
  EXPECT_EQ(unbounded_stats.weight_evictions, 0u);
  EXPECT_EQ(unbounded_stats.weight_rows, 80u);  // 2 regions × 40 scales
}

TEST_F(NgramFixture, LruEvictsLeastRecentlyUsedKey) {
  NgramDomain domain(graph_.get(), distance_.get());
  // Exact-LRU victim selection is a global property — pin the
  // single-stripe mode so all keys share one LRU order.
  domain.set_cache_mode(NgramDomain::CacheMode::kShared);
  domain.set_cache_capacity(2);
  const region::RegionId r0 = *decomp_->Lookup(0, 54);

  Rng rng(5);
  // Two unigram draws at distinct ε fill the cache; touching the first
  // key again makes the second the LRU victim when a third arrives.
  ASSERT_TRUE(domain.Sample({r0}, 1.0, rng).ok());
  ASSERT_TRUE(domain.Sample({r0}, 2.0, rng).ok());
  ASSERT_TRUE(domain.Sample({r0}, 1.0, rng).ok());  // refresh key ε=1
  ASSERT_TRUE(domain.Sample({r0}, 3.0, rng).ok());  // evicts key ε=2
  const auto after = domain.cache_stats();
  EXPECT_EQ(after.weight_rows, 2u);
  EXPECT_EQ(after.weight_evictions, 1u);

  // ε=1 must still be cached (a hit, no new miss); ε=2 must re-miss.
  ASSERT_TRUE(domain.Sample({r0}, 1.0, rng).ok());
  EXPECT_EQ(domain.cache_stats().weight_misses, after.weight_misses);
  ASSERT_TRUE(domain.Sample({r0}, 2.0, rng).ok());
  EXPECT_EQ(domain.cache_stats().weight_misses, after.weight_misses + 1);
}

TEST_F(NgramFixture, ShrinkingCapacityEvictsImmediately) {
  NgramDomain domain(graph_.get(), distance_.get());
  // Pin kShared: "exactly 1 row survives" assumes one global LRU.
  domain.set_cache_mode(NgramDomain::CacheMode::kShared);
  const region::RegionId r0 = *decomp_->Lookup(0, 54);
  Rng rng(6);
  for (const double epsilon : {1.0, 2.0, 3.0, 4.0}) {
    ASSERT_TRUE(domain.Sample({r0}, epsilon, rng).ok());
  }
  ASSERT_EQ(domain.cache_stats().weight_rows, 4u);
  domain.set_cache_capacity(1);
  EXPECT_EQ(domain.cache_stats().weight_rows, 1u);
  EXPECT_EQ(domain.cache_stats().weight_evictions, 3u);
}

TEST_F(NgramFixture, SensitivityScalesWithN) {
  EXPECT_DOUBLE_EQ(domain_->Sensitivity(2),
                   2.0 * distance_->MaxDistance());
  EXPECT_DOUBLE_EQ(domain_->Sensitivity(3),
                   3.0 * distance_->MaxDistance());
}

TEST_F(NgramFixture, UtilityBoundPositiveAndDecreasingInEpsilon) {
  const double loose = domain_->UtilityBound(2, 0.5, 1.0);
  const double tight = domain_->UtilityBound(2, 5.0, 1.0);
  EXPECT_GT(loose, 0.0);
  EXPECT_GT(loose, tight);
}

// ---------- NgramPerturber ----------

TEST_F(NgramFixture, PerturbationCountsMatchTheorem53) {
  // |Z| = |τ| + n − 1 perturbations; every position covered exactly n
  // times (main + supplementary, Figure 3).
  for (int n = 1; n <= 3; ++n) {
    NgramPerturber perturber(domain_.get(),
                             NgramPerturber::Config{n, 5.0});
    region::RegionTrajectory tau;
    for (model::PoiId p = 0; p < 5; ++p) {
      tau.push_back(*decomp_->Lookup(p, 60 + 6 * p));
    }
    Rng rng(5);
    auto z = perturber.Perturb(tau, rng);
    ASSERT_TRUE(z.ok()) << "n=" << n;
    EXPECT_EQ(z->size(), tau.size() + n - 1) << "n=" << n;
    for (size_t i = 1; i <= tau.size(); ++i) {
      EXPECT_EQ(CoverageCount(*z, i), static_cast<size_t>(n))
          << "n=" << n << " position " << i;
    }
  }
}

TEST_F(NgramFixture, BudgetComposesToExactlyEpsilon) {
  const double epsilon = 5.0;
  NgramPerturber perturber(domain_.get(),
                           NgramPerturber::Config{2, epsilon});
  region::RegionTrajectory tau = {*decomp_->Lookup(0, 60),
                                  *decomp_->Lookup(1, 66),
                                  *decomp_->Lookup(2, 72)};
  auto budget = ldp::PrivacyBudget::Create(epsilon);
  ASSERT_TRUE(budget.ok());
  Rng rng(6);
  auto z = perturber.Perturb(tau, rng, &*budget);
  ASSERT_TRUE(z.ok());
  EXPECT_NEAR(budget->spent(), epsilon, 1e-9);
  EXPECT_EQ(budget->history().size(), tau.size() + 2 - 1);
}

TEST_F(NgramFixture, InsufficientBudgetFails) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
  region::RegionTrajectory tau = {*decomp_->Lookup(0, 60),
                                  *decomp_->Lookup(1, 66)};
  // A budget accountant holding less than the configured ε must refuse.
  auto budget = ldp::PrivacyBudget::Create(1.0);
  ASSERT_TRUE(budget.ok());
  Rng rng(7);
  auto z = perturber.Perturb(tau, rng, &*budget);
  EXPECT_FALSE(z.ok());
}

TEST_F(NgramFixture, NGreaterThanLengthIsClamped) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{3, 5.0});
  region::RegionTrajectory tau = {*decomp_->Lookup(0, 60),
                                  *decomp_->Lookup(1, 66)};
  Rng rng(8);
  auto z = perturber.Perturb(tau, rng);
  ASSERT_TRUE(z.ok());
  // Clamped to n = 2: 2 + 2 − 1 = 3 perturbations, coverage 2.
  EXPECT_EQ(z->size(), 3u);
  EXPECT_EQ(CoverageCount(*z, 1), 2u);
  EXPECT_EQ(CoverageCount(*z, 2), 2u);
}

TEST_F(NgramFixture, EmptyTrajectoryRejected) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
  Rng rng(9);
  EXPECT_FALSE(perturber.Perturb({}, rng).ok());
}

TEST_F(NgramFixture, EpsilonPerPerturbationFormula) {
  NgramPerturber perturber(domain_.get(), NgramPerturber::Config{2, 5.0});
  EXPECT_DOUBLE_EQ(perturber.EpsilonPerPerturbation(4), 5.0 / 5.0);
  EXPECT_DOUBLE_EQ(perturber.EpsilonPerPerturbation(8), 5.0 / 9.0);
  NgramPerturber tri(domain_.get(), NgramPerturber::Config{3, 6.0});
  EXPECT_DOUBLE_EQ(tri.EpsilonPerPerturbation(6), 6.0 / 8.0);
}

}  // namespace
}  // namespace trajldp::core
