#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/batch_release_engine.h"
#include "core/mechanism.h"
#include "core/shard_plan.h"
#include "core/streaming_collector.h"
#include "io/wire.h"
#include "net/framing.h"
#include "net/ingest_server.h"
#include "net/report_client.h"
#include "net/socket.h"
#include "test_world.h"

namespace trajldp::net {
namespace {

using core::FullRelease;
using core::ShardPlan;
using core::StreamingCollector;
using core::UserRelease;
using trajldp::testing::MakeGridWorld;

bool WaitFor(const std::function<bool()>& condition,
             std::chrono::seconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!condition()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// The acceptance surface of the networked ingest path: everything a
/// remote device can throw at a collector shard over a real loopback
/// TCP connection, from the happy bit-identical path to hostile bytes.
class NetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trajldp::testing::GridWorldOptions options;
    options.rows = 15;
    options.cols = 15;
    auto db = MakeGridWorld(options);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<model::PoiDatabase>(std::move(*db));
    time_ = *model::TimeDomain::Create(10);

    core::NGramConfig config;
    config.n = 2;
    config.epsilon = 5.0;
    config.decomposition.grid_size = 5;
    config.decomposition.coarse_grids = {1};
    config.decomposition.base_interval_minutes = 720;
    config.decomposition.merge.kappa = 1;
    config.reachability.speed_kmh = 30.0;
    config.reachability.reference_gap_minutes = 60;
    auto mech = core::NGramMechanism::Build(db_.get(), time_, config);
    ASSERT_TRUE(mech.ok()) << mech.status();
    mech_ = std::make_unique<core::NGramMechanism>(std::move(*mech));
  }

  std::vector<region::RegionTrajectory> MakeUsers(size_t count,
                                                  uint64_t seed) const {
    const auto num_regions =
        static_cast<uint64_t>(mech_->decomposition().num_regions());
    Rng rng(seed);
    std::vector<region::RegionTrajectory> users(count);
    for (auto& tau : users) {
      const size_t len = 2 + static_cast<size_t>(rng.UniformUint64(4));
      for (size_t i = 0; i < len; ++i) {
        tau.push_back(
            static_cast<region::RegionId>(rng.UniformUint64(num_regions)));
      }
    }
    return users;
  }

  io::ReportBatch MakeReports(
      const std::vector<region::RegionTrajectory>& users, uint64_t seed) {
    core::BatchReleaseEngine engine(&mech_->perturber(),
                                    core::BatchReleaseEngine::Config{2});
    auto perturbed = engine.ReleaseAll(users, seed);
    EXPECT_TRUE(perturbed.ok()) << perturbed.status();
    return MakeWireReports(users, std::move(*perturbed), mech_->perturber());
  }

  std::vector<FullRelease> Reference(
      const std::vector<region::RegionTrajectory>& users, uint64_t seed) {
    core::BatchReleaseEngine engine(mech_.get(),
                                    core::BatchReleaseEngine::Config{2});
    auto reference = engine.ReleaseAllFull(users, seed);
    EXPECT_TRUE(reference.ok()) << reference.status();
    return std::move(*reference);
  }

  /// One collector shard behind one socket front-end.
  struct Shard {
    std::vector<UserRelease> out;
    std::unique_ptr<StreamingCollector> collector;
    std::unique_ptr<IngestServer> server;
  };

  std::unique_ptr<Shard> StartShard(uint64_t seed,
                                    IngestServer::Options options = {},
                                    StreamingCollector::Config config = {}) {
    auto shard = std::make_unique<Shard>();
    Shard* raw = shard.get();
    shard->collector = std::make_unique<StreamingCollector>(
        mech_.get(), seed,
        [raw](UserRelease release) {
          raw->out.push_back(std::move(release));
        },
        config);
    auto server = IngestServer::Start(shard->collector.get(), options);
    EXPECT_TRUE(server.ok()) << server.status();
    if (!server.ok()) return nullptr;
    shard->server = std::move(*server);
    return shard;
  }

  void ExpectIdenticalReleases(const std::vector<FullRelease>& a,
                               const std::vector<FullRelease>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].regions, b[i].regions) << "user " << i;
      EXPECT_EQ(a[i].trajectory, b[i].trajectory) << "user " << i;
      EXPECT_EQ(a[i].poi_attempts, b[i].poi_attempts) << "user " << i;
      EXPECT_EQ(a[i].smoothed, b[i].smoothed) << "user " << i;
    }
  }

  std::unique_ptr<model::PoiDatabase> db_;
  model::TimeDomain time_;
  std::unique_ptr<core::NGramMechanism> mech_;
};

// The tentpole criterion: K collector shards fed over real TCP
// connections produce releases bit-identical to the in-process batch
// engine, for K ∈ {1, 2, 4} (the multi-process variant of this exact
// setup is examples/run_net_shards.sh, registered as ctest entries).
TEST_F(NetFixture, LoopbackShardsAreBitIdenticalToBatchEngine) {
  const uint64_t seed = 20260729;
  const auto users = MakeUsers(24, 3);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  for (const size_t num_shards : {1u, 2u, 4u}) {
    ShardPlan plan;
    plan.num_shards = num_shards;
    plan.strategy = ShardPlan::Strategy::kRange;
    plan.num_users = users.size();
    auto sharded = core::PartitionByShard(plan, io::ReportBatch(reports));

    std::vector<std::unique_ptr<Shard>> shards;
    for (size_t s = 0; s < num_shards; ++s) {
      IngestServer::Options options;
      options.expected_range = plan.RangeOf(s);
      shards.push_back(StartShard(seed, options));
      ASSERT_NE(shards.back(), nullptr);
    }

    for (size_t s = 0; s < num_shards; ++s) {
      ReportClient client("127.0.0.1", shards[s]->server->port());
      for (size_t begin = 0; begin < sharded[s].size(); begin += 3) {
        const size_t end = std::min(begin + 3, sharded[s].size());
        ASSERT_TRUE(client
                        .SendBatch(std::span<const io::WireReport>(
                            sharded[s].data() + begin, end - begin))
                        .ok());
      }
      client.Close();
    }

    ASSERT_TRUE(WaitFor([&] {
      size_t released = 0;
      for (const auto& shard : shards) {
        released += shard->collector->reports_released();
      }
      return released == users.size();
    })) << num_shards << " shards";

    std::vector<std::vector<UserRelease>> outputs;
    for (auto& shard : shards) {
      shard->server->Shutdown();
      EXPECT_TRUE(shard->server->first_connection_error().ok())
          << shard->server->first_connection_error();
      ASSERT_TRUE(shard->collector->Finish().ok());
      outputs.push_back(std::move(shard->out));
    }
    auto merged = core::MergeShardReleases(std::move(outputs), users.size());
    ASSERT_TRUE(merged.ok()) << num_shards << " shards: " << merged.status();
    ExpectIdenticalReleases(*merged, reference);
  }
}

// ---------- malformed input over the socket ----------

TEST_F(NetFixture, GarbageBytesFailTheConnectionNotTheServer) {
  const uint64_t seed = 7;
  auto shard = StartShard(seed);
  ASSERT_NE(shard, nullptr);

  {
    auto conn = TcpConnect("127.0.0.1", shard->server->port());
    ASSERT_TRUE(conn.ok()) << conn.status();
    ASSERT_TRUE(SendAll(*conn, "this is definitely not a TLWB frame").ok());
  }  // close

  ASSERT_TRUE(WaitFor(
      [&] { return shard->server->stats().connections_failed == 1; }));
  auto error = shard->server->first_connection_error();
  EXPECT_FALSE(error.ok());
  EXPECT_NE(error.message().find("magic"), std::string::npos) << error;

  // The server is still alive and serving: a well-formed connection
  // after the hostile one ingests normally.
  const auto users = MakeUsers(3, 5);
  const auto reports = MakeReports(users, seed);
  ReportClient client("127.0.0.1", shard->server->port());
  ASSERT_TRUE(client.SendBatch(reports).ok());
  client.Close();
  ASSERT_TRUE(WaitFor(
      [&] { return shard->collector->reports_released() == users.size(); }));
  shard->server->Shutdown();
  EXPECT_TRUE(shard->collector->Finish().ok());
}

TEST_F(NetFixture, OversizedLengthPrefixRejectedBeforeAllocation) {
  auto shard = StartShard(11);
  ASSERT_NE(shard, nullptr);

  // A syntactically valid header whose declared payload is ~4 GiB: the
  // server must reject from the 16 header bytes, never sizing a buffer.
  std::string header = *io::EncodeReportBatch(io::ReportBatch{});
  header.resize(io::kWireHeaderBytes);
  for (size_t i = 12; i < 16; ++i) header[i] = static_cast<char>(0xFF);
  {
    auto conn = TcpConnect("127.0.0.1", shard->server->port());
    ASSERT_TRUE(conn.ok()) << conn.status();
    ASSERT_TRUE(SendAll(*conn, header).ok());
    ASSERT_TRUE(WaitFor(
        [&] { return shard->server->stats().connections_failed == 1; }));
  }
  auto error = shard->server->first_connection_error();
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.message().find("frame limit"), std::string::npos) << error;
  shard->server->Shutdown();
  EXPECT_TRUE(shard->collector->Finish().ok());
}

TEST_F(NetFixture, TruncatedConnectionIsCorruptionNotCleanEof) {
  const uint64_t seed = 13;
  auto shard = StartShard(seed);
  ASSERT_NE(shard, nullptr);

  const auto users = MakeUsers(2, 9);
  const auto reports = MakeReports(users, seed);
  const std::string frame = *io::EncodeReportBatch(reports);
  {
    auto conn = TcpConnect("127.0.0.1", shard->server->port());
    ASSERT_TRUE(conn.ok()) << conn.status();
    // Half a frame, then FIN: a device dying mid-upload.
    ASSERT_TRUE(
        SendAll(*conn, std::string_view(frame).substr(0, frame.size() / 2))
            .ok());
  }
  ASSERT_TRUE(WaitFor(
      [&] { return shard->server->stats().connections_failed == 1; }));
  auto error = shard->server->first_connection_error();
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.message().find("truncated"), std::string::npos) << error;
  // Nothing reached the collector; the stream is still clean.
  shard->server->Shutdown();
  EXPECT_TRUE(shard->collector->Finish().ok());
  EXPECT_EQ(shard->collector->reports_released(), 0u);
}

TEST_F(NetFixture, MidStreamCorruptionFailsOnlyItsConnectionUnderCrcVerify) {
  const uint64_t seed = 20260729;
  const auto users = MakeUsers(6, 11);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);
  auto shard = StartShard(seed);  // verify_crc defaults on
  ASSERT_NE(shard, nullptr);

  // N good frames, then one with a flipped payload byte, on ONE
  // connection.
  auto conn = TcpConnect("127.0.0.1", shard->server->port());
  ASSERT_TRUE(conn.ok()) << conn.status();
  for (size_t i = 0; i + 1 < reports.size(); ++i) {
    ASSERT_TRUE(WriteFrameToSocket(
                    *conn, *io::EncodeReportBatch(io::ReportBatch{reports[i]}))
                    .ok());
  }
  ASSERT_TRUE(WaitFor([&] {
    return shard->collector->reports_released() == reports.size() - 1;
  }));
  std::string corrupt =
      *io::EncodeReportBatch(io::ReportBatch{reports.back()});
  corrupt[io::kWireHeaderBytes + 1] =
      static_cast<char>(corrupt[io::kWireHeaderBytes + 1] ^ 0x10);
  ASSERT_TRUE(WriteFrameToSocket(*conn, corrupt).ok());
  ASSERT_TRUE(WaitFor(
      [&] { return shard->server->stats().connections_failed == 1; }));
  auto error = shard->server->first_connection_error();
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.message().find("checksum"), std::string::npos) << error;
  conn->Close();

  // The CRC gate kept the corruption out of the collector: its stream
  // is clean, and every release emitted before the bad frame is exact.
  shard->server->Shutdown();
  ASSERT_TRUE(shard->collector->Finish().ok());
  ASSERT_EQ(shard->out.size(), reports.size() - 1);
  for (const UserRelease& release : shard->out) {
    const auto& expected = reference[release.user_id];
    EXPECT_EQ(release.release.regions, expected.regions);
    EXPECT_EQ(release.release.trajectory, expected.trajectory);
  }
}

TEST_F(NetFixture, MidStreamCorruptionLatchesCollectorWithoutCrcVerify) {
  const uint64_t seed = 17;
  const auto users = MakeUsers(4, 15);
  const auto reports = MakeReports(users, seed);
  IngestServer::Options options;
  options.verify_crc = false;
  auto shard = StartShard(seed, options);
  ASSERT_NE(shard, nullptr);

  ReportClient client("127.0.0.1", shard->server->port());
  for (size_t i = 0; i + 1 < reports.size(); ++i) {
    ASSERT_TRUE(
        client.SendBatch(std::span<const io::WireReport>(&reports[i], 1))
            .ok());
  }
  ASSERT_TRUE(WaitFor([&] {
    return shard->collector->reports_released() == reports.size() - 1;
  }));
  std::string corrupt =
      *io::EncodeReportBatch(io::ReportBatch{reports.back()});
  corrupt[io::kWireHeaderBytes] =
      static_cast<char>(corrupt[io::kWireHeaderBytes] ^ 0x01);
  ASSERT_TRUE(client.SendFrame(corrupt).ok());
  client.Close();

  // Without the per-connection gate the corruption reaches a worker and
  // latches the collector's error — the documented streaming policy —
  // while releases already emitted stay emitted.
  ASSERT_TRUE(WaitFor([&] { return !shard->collector->Push({}).ok(); }));
  shard->server->Shutdown();
  auto status = shard->collector->Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum"), std::string::npos) << status;
  EXPECT_EQ(shard->out.size(), reports.size() - 1);
}

TEST_F(NetFixture, ShardRangeValidationRejectsForeignBatch) {
  const uint64_t seed = 19;
  const auto users = MakeUsers(8, 21);
  const auto reports = MakeReports(users, seed);
  IngestServer::Options options;
  options.expected_range = std::pair<uint64_t, uint64_t>(0, 4);
  auto shard = StartShard(seed, options);
  ASSERT_NE(shard, nullptr);

  // Users [4, 8) belong to some other shard; the range-carrying frame
  // is bounced from its first 32 bytes, no reports decoded.
  ReportClient client("127.0.0.1", shard->server->port());
  ASSERT_TRUE(client
                  .SendBatch(std::span<const io::WireReport>(
                      reports.data() + 4, 4))
                  .ok());
  ASSERT_TRUE(WaitFor(
      [&] { return shard->server->stats().connections_failed == 1; }));
  auto error = shard->server->first_connection_error();
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.message().find("outside this shard"), std::string::npos)
      << error;
  EXPECT_EQ(shard->collector->reports_released(), 0u);

  // The right half is accepted — over a fresh connection.
  ReportClient client2("127.0.0.1", shard->server->port());
  ASSERT_TRUE(client2
                  .SendBatch(std::span<const io::WireReport>(
                      reports.data(), 4))
                  .ok());
  ASSERT_TRUE(WaitFor(
      [&] { return shard->collector->reports_released() == 4u; }));
  shard->server->Shutdown();
  EXPECT_TRUE(shard->collector->Finish().ok());
}

// ---------- flow control and shutdown ----------

TEST_F(NetFixture, BackpressurePropagatesWithoutLosingFrames) {
  const uint64_t seed = 23;
  const auto users = MakeUsers(40, 25);
  const auto reports = MakeReports(users, seed);

  // A deliberately slow single worker over a capacity-1 queue: the
  // connection thread must spend most of the run holding one frame in
  // its timed-push retry loop (collector backpressure → no socket
  // reads → TCP flow control), and still deliver everything.
  StreamingCollector::Config config;
  config.num_threads = 1;
  config.queue_capacity = 1;
  IngestServer::Options options;
  options.push_retry = std::chrono::milliseconds(2);
  auto shard = StartShard(seed, options, config);
  ASSERT_NE(shard, nullptr);

  ReportClient client("127.0.0.1", shard->server->port());
  for (const io::WireReport& report : reports) {
    ASSERT_TRUE(
        client.SendBatch(std::span<const io::WireReport>(&report, 1)).ok());
  }
  client.Close();
  ASSERT_TRUE(WaitFor(
      [&] { return shard->collector->reports_released() == users.size(); }));
  EXPECT_EQ(shard->server->stats().frames_ingested, users.size());
  EXPECT_TRUE(shard->server->first_connection_error().ok());
  shard->server->Shutdown();
  ASSERT_TRUE(shard->collector->Finish().ok());
  EXPECT_EQ(shard->out.size(), users.size());
}

TEST_F(NetFixture, ShutdownUnblocksABackpressuredConnection) {
  const uint64_t seed = 29;
  const auto users = MakeUsers(6, 27);
  const auto reports = MakeReports(users, seed);

  // Gate the sink so the pipeline jams: worker blocked in the sink,
  // queue full, connection thread stuck in its timed-push loop.
  std::mutex gate;
  gate.lock();
  auto collector_config = StreamingCollector::Config();
  collector_config.num_threads = 1;
  collector_config.queue_capacity = 1;
  std::vector<UserRelease> out;
  StreamingCollector collector(
      mech_.get(), seed,
      [&](UserRelease release) {
        std::lock_guard<std::mutex> wait(gate);
        out.push_back(std::move(release));
      },
      collector_config);
  IngestServer::Options options;
  options.push_retry = std::chrono::milliseconds(5);
  auto server = IngestServer::Start(&collector, options);
  ASSERT_TRUE(server.ok()) << server.status();

  ReportClient client("127.0.0.1", (*server)->port());
  for (const io::WireReport& report : reports) {
    ASSERT_TRUE(
        client.SendBatch(std::span<const io::WireReport>(&report, 1)).ok());
  }
  // Let the jam actually form (first release attempt blocks in sink).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Shutdown must return despite the blocked connection: it wakes the
  // retry loop, joins the thread, and leaves the collector to us.
  (*server)->Shutdown();
  gate.unlock();
  ASSERT_TRUE(collector.Finish().ok());
  // Whatever was pushed before the jam stays released; nothing hangs.
  EXPECT_LE(out.size(), users.size());
}

// ---------- client behaviour ----------

TEST_F(NetFixture, ClientGivesUpCleanlyWhenNobodyListens) {
  // Grab an ephemeral port, then close the listener: connecting to it
  // must fail fast, max_attempts times, with a clean Status.
  uint16_t dead_port = 0;
  {
    auto listener = TcpListen(ListenOptions{});
    ASSERT_TRUE(listener.ok());
    dead_port = *LocalPort(*listener);
  }
  ReportClient::Options options;
  options.max_attempts = 2;
  options.initial_backoff = std::chrono::milliseconds(1);
  ReportClient client("127.0.0.1", dead_port, options);
  auto status = client.SendFrame(*io::EncodeReportBatch(io::ReportBatch{}));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("2 attempt(s)"), std::string::npos)
      << status;
  EXPECT_EQ(client.frames_sent(), 0u);
}

TEST_F(NetFixture, ClientCountsBackoffSleepsAndConnectFailures) {
  uint16_t dead_port = 0;
  {
    auto listener = TcpListen(ListenOptions{});
    ASSERT_TRUE(listener.ok());
    dead_port = *LocalPort(*listener);
  }
  obs::Registry registry;
  ReportClient::Options options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::milliseconds(1);
  options.max_backoff = std::chrono::milliseconds(5);
  options.metrics = &registry;
  options.metric_labels = {{"device", "t"}};
  ReportClient client("127.0.0.1", dead_port, options);
  ASSERT_FALSE(
      client.SendFrame(*io::EncodeReportBatch(io::ReportBatch{})).ok());
  // Every attempt dialed a dead port; every attempt past the first
  // slept a backoff draw first.
  EXPECT_EQ(client.connect_failures(), 3u);
  EXPECT_EQ(client.backoff_sleeps(), 2u);
  EXPECT_GE(client.backoff_sleep_total_ms(),
            client.backoff_sleeps() *
                static_cast<uint64_t>(options.initial_backoff.count()));
  // The registry mirror saw the same events as they happened.
  const obs::Labels labels = {{"device", "t"}};
  auto snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(
      snapshot.Find("trajldp_client_connect_failures_total", labels)->value,
      3.0);
  EXPECT_DOUBLE_EQ(
      snapshot.Find("trajldp_client_backoff_sleeps_total", labels)->value,
      2.0);
}

TEST_F(NetFixture, ClientReconnectsAcrossServerRestart) {
  const uint64_t seed = 31;
  const auto users = MakeUsers(2, 33);
  const auto reports = MakeReports(users, seed);

  auto first = StartShard(seed);
  ASSERT_NE(first, nullptr);
  const uint16_t port = first->server->port();

  ReportClient client("127.0.0.1", port);
  ASSERT_TRUE(
      client.SendBatch(std::span<const io::WireReport>(&reports[0], 1)).ok());
  ASSERT_TRUE(WaitFor(
      [&] { return first->collector->reports_released() == 1u; }));
  first->server->Shutdown();
  ASSERT_TRUE(first->collector->Finish().ok());

  // Same endpoint, new process-generation: SO_REUSEADDR lets the
  // restarted server bind the port the client still points at.
  IngestServer::Options options;
  options.port = port;
  auto second = StartShard(seed, options);
  ASSERT_NE(second, nullptr);
  ASSERT_EQ(second->server->port(), port);

  // The client's next send sees the old connection's FIN, redials, and
  // delivers — no frames lost across a clean restart.
  ASSERT_TRUE(
      client.SendBatch(std::span<const io::WireReport>(&reports[1], 1)).ok());
  EXPECT_EQ(client.reconnects(), 1u);
  ASSERT_TRUE(WaitFor(
      [&] { return second->collector->reports_released() == 1u; }));
  second->server->Shutdown();
  ASSERT_TRUE(second->collector->Finish().ok());
  EXPECT_EQ(first->out.size() + second->out.size(), 2u);
}

// ---------- the FrameSource seam over a live socket ----------

TEST_F(NetFixture, SocketFrameSourceDrivesACollectorDirectly) {
  const uint64_t seed = 37;
  const auto users = MakeUsers(5, 35);
  const auto reference = Reference(users, seed);
  const auto reports = MakeReports(users, seed);

  auto listener = TcpListen(ListenOptions{});
  ASSERT_TRUE(listener.ok()) << listener.status();
  const uint16_t port = *LocalPort(*listener);

  std::thread device([&] {
    ReportClient client("127.0.0.1", port);
    for (size_t begin = 0; begin < reports.size(); begin += 2) {
      const size_t end = std::min(begin + 2, reports.size());
      ASSERT_TRUE(client
                      .SendBatch(std::span<const io::WireReport>(
                          reports.data() + begin, end - begin))
                      .ok());
    }
    client.Close();
  });

  auto conn = Accept(*listener);
  ASSERT_TRUE(conn.ok()) << conn.status();
  std::vector<std::vector<UserRelease>> outputs(1);
  StreamingCollector collector(mech_.get(), seed, [&](UserRelease release) {
    outputs[0].push_back(std::move(release));
  });
  SocketFrameSource source(&*conn);
  ASSERT_TRUE(collector.IngestEncoded(source).ok());
  device.join();
  ASSERT_TRUE(collector.Finish().ok());
  auto merged = core::MergeShardReleases(std::move(outputs), users.size());
  ASSERT_TRUE(merged.ok()) << merged.status();
  ExpectIdenticalReleases(*merged, reference);
}

}  // namespace
}  // namespace trajldp::net
